#include "interp/compiled.h"

#include "support/diagnostics.h"

namespace repro::interp {

using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;


// --------------------------------------------------------- compilation

CompiledFunction::CompiledFunction(const ir::Function &func)
{
    compile(func);
}

uint32_t
CompiledFunction::slotOf(const Value *v)
{
    auto [it, inserted] =
        slots_.emplace(v, static_cast<uint32_t>(frameTemplate_.size()));
    if (!inserted)
        return it->second;

    RuntimeValue init = RuntimeValue::makeVoid();
    if (v->isConstant()) {
        const auto *c = static_cast<const ir::Constant *>(v);
        if (c->isFP()) {
            double val = c->fpValue();
            if (floatResultRounds(c->type()))
                val = roundToFloatPrecision(val);
            init = RuntimeValue::makeFP(val);
        } else {
            init = RuntimeValue::makeInt(c->intValue());
        }
    } else if (v->isGlobal()) {
        globalSlots_.emplace_back(
            it->second, static_cast<const ir::GlobalVariable *>(v));
    }
    frameTemplate_.push_back(init);
    return it->second;
}

void
CompiledFunction::compile(const ir::Function &func)
{
    // Arguments occupy slots [0, numArgs) so the executor can copy
    // call arguments without a mapping step.
    for (size_t i = 0; i < func.numArgs(); ++i) {
        uint32_t slot = slotOf(func.arg(i));
        reproAssert(slot == i, "compiled interp: argument slot layout");
        faultKinds_.push_back(func.arg(i)->type()->kind());
    }

    // Pass 1: dense profile indices for every instruction (phis
    // included — they are charged through edge move groups) and
    // result slots for every value-producing instruction, so forward
    // references (phis, cross-block uses) resolve during emission.
    std::map<const Instruction *, uint32_t> profIdx;
    for (const auto &bb : func.blocks()) {
        for (const auto &inst : bb->insts()) {
            profIdx[inst.get()] =
                static_cast<uint32_t>(profInsts_.size());
            profInsts_.push_back(inst.get());
            if (!inst->type()->isVoid()) {
                // Injectable slots form the contiguous prefix
                // [0, faultSlotCount()): constants and globals only
                // get slots later, during emission.
                uint32_t slot = slotOf(inst.get());
                if (slot == faultKinds_.size())
                    faultKinds_.push_back(inst->type()->kind());
            }
        }
    }

    // Pass 2: block layout. A block's code starts after its leading
    // phi group (leading phis emit no instruction of their own).
    std::map<const ir::BasicBlock *, uint32_t> blockPc;
    uint32_t pc = 0;
    for (const auto &bb : func.blocks()) {
        blockPc[bb.get()] = pc;
        size_t leading = 0;
        while (leading < bb->size() &&
               bb->insts()[leading]->is(Opcode::Phi)) {
            ++leading;
        }
        pc += static_cast<uint32_t>(bb->size() - leading);
    }
    entryPc_ = blockPc.at(func.entry());

    // Builds the move group of the CFG edge pred -> target; kNoGroup
    // when the target has no leading phis.
    auto edgeGroup = [&](const ir::BasicBlock *pred,
                         const ir::BasicBlock *target) -> uint32_t {
        size_t nphis = 0;
        while (nphis < target->size() &&
               target->insts()[nphis]->is(Opcode::Phi)) {
            ++nphis;
        }
        if (nphis == 0)
            return BcInst::kNoGroup;
        BcMoveGroup g;
        g.movesBegin = static_cast<uint32_t>(moves_.size());
        g.count = static_cast<uint32_t>(nphis);
        g.profBegin = profIdx.at(target->insts()[0].get());
        for (size_t k = 0; k < nphis; ++k) {
            const Instruction *phi = target->insts()[k].get();
            const Value *in = phi->incomingFor(pred);
            if (!in) {
                g.trap = true;
                break;
            }
            moves_.push_back({slots_.at(phi), slotOf(in)});
        }
        groups_.push_back(g);
        return static_cast<uint32_t>(groups_.size() - 1);
    };

    auto trapOp = [&](BcInst &bc, const std::string &message) {
        bc.op = BcOp::Trap;
        bc.imm = trapMessages_.size();
        trapMessages_.push_back(message);
    };

    auto loadOpFor = [](Type::Kind kind, BcOp &out) {
        switch (kind) {
          case Type::Kind::I1: out = BcOp::LoadI1; return true;
          case Type::Kind::I32: out = BcOp::LoadI32; return true;
          case Type::Kind::I64: out = BcOp::LoadI64; return true;
          case Type::Kind::Float: out = BcOp::LoadF32; return true;
          case Type::Kind::Double: out = BcOp::LoadF64; return true;
          case Type::Kind::Pointer: out = BcOp::LoadPtr; return true;
          default: return false;
        }
    };
    auto storeOpFor = [](Type::Kind kind, BcOp &out) {
        switch (kind) {
          case Type::Kind::I1: out = BcOp::StoreI1; return true;
          case Type::Kind::I32: out = BcOp::StoreI32; return true;
          case Type::Kind::I64: out = BcOp::StoreI64; return true;
          case Type::Kind::Float: out = BcOp::StoreF32; return true;
          case Type::Kind::Double: out = BcOp::StoreF64; return true;
          case Type::Kind::Pointer: out = BcOp::StorePtr; return true;
          default: return false;
        }
    };

    // Pass 3: emission.
    for (const auto &bb : func.blocks()) {
        bool leading = true;
        for (const auto &instPtr : bb->insts()) {
            const Instruction *inst = instPtr.get();
            if (inst->is(Opcode::Phi) && leading)
                continue; // handled by edge move groups
            leading = false;

            BcInst bc;
            bc.prof = profIdx.at(inst);
            if (!inst->type()->isVoid())
                bc.dst = slots_.at(inst);

            switch (inst->opcode()) {
              case Opcode::Phi:
                // A phi below a non-phi never occurs in verified IR;
                // refuse at execution time rather than miscompile.
                trapOp(bc, "interpreter: phi not at block start");
                break;
              case Opcode::Add: bc.op = BcOp::Add; goto binary;
              case Opcode::Sub: bc.op = BcOp::Sub; goto binary;
              case Opcode::Mul: bc.op = BcOp::Mul; goto binary;
              case Opcode::SDiv: bc.op = BcOp::SDiv; goto binary;
              case Opcode::SRem: bc.op = BcOp::SRem; goto binary;
              case Opcode::And: bc.op = BcOp::And; goto binary;
              case Opcode::Or: bc.op = BcOp::Or; goto binary;
              case Opcode::Xor: bc.op = BcOp::Xor; goto binary;
              case Opcode::Shl: bc.op = BcOp::Shl; goto binary;
              case Opcode::AShr: bc.op = BcOp::AShr; goto binary;
              case Opcode::FAdd:
              case Opcode::FSub:
              case Opcode::FMul:
              case Opcode::FDiv:
                bc.op = inst->opcode() == Opcode::FAdd   ? BcOp::FAdd
                        : inst->opcode() == Opcode::FSub ? BcOp::FSub
                        : inst->opcode() == Opcode::FMul ? BcOp::FMul
                                                         : BcOp::FDiv;
                bc.round = floatResultRounds(inst->type());
                goto binary;
              binary:
                bc.a = slotOf(inst->operand(0));
                bc.b = slotOf(inst->operand(1));
                break;
              case Opcode::Load:
                if (!loadOpFor(inst->type()->kind(), bc.op)) {
                    trapOp(bc, "load of unsupported type " +
                                   inst->type()->str());
                    break;
                }
                bc.a = slotOf(inst->operand(0));
                break;
              case Opcode::Store:
                if (!storeOpFor(inst->operand(0)->type()->kind(),
                                bc.op)) {
                    trapOp(bc, "store of unsupported type " +
                                   inst->operand(0)->type()->str());
                    break;
                }
                bc.a = slotOf(inst->operand(0));
                bc.b = slotOf(inst->operand(1));
                break;
              case Opcode::GEP: {
                bc.op = BcOp::Gep;
                bc.a = slotOf(inst->operand(0));
                bc.extraBegin = static_cast<uint32_t>(extra_.size());
                Type *cur = inst->accessType();
                extra_.push_back(slotOf(inst->operand(1)));
                scales_.push_back(cur->sizeInBytes());
                for (size_t k = 2; k < inst->numOperands(); ++k) {
                    cur = cur->element();
                    extra_.push_back(slotOf(inst->operand(k)));
                    scales_.push_back(cur->sizeInBytes());
                }
                bc.extraEnd = static_cast<uint32_t>(extra_.size());
                break;
              }
              case Opcode::Alloca:
                bc.op = BcOp::Alloca;
                bc.imm = inst->accessType()->sizeInBytes();
                break;
              case Opcode::ICmp:
              case Opcode::FCmp:
                bc.op = inst->opcode() == Opcode::ICmp ? BcOp::ICmp
                                                       : BcOp::FCmp;
                bc.pred = inst->cmpPred();
                bc.a = slotOf(inst->operand(0));
                bc.b = slotOf(inst->operand(1));
                break;
              case Opcode::Select:
                bc.op = BcOp::Select;
                bc.a = slotOf(inst->operand(0));
                bc.b = slotOf(inst->operand(1));
                bc.c = slotOf(inst->operand(2));
                break;
              case Opcode::Br:
                if (inst->isConditionalBranch()) {
                    bc.op = BcOp::CondBr;
                    bc.a = slotOf(inst->operand(0));
                    bc.b = blockPc.at(inst->blockTargets()[0]);
                    bc.c = blockPc.at(inst->blockTargets()[1]);
                    bc.g0 = edgeGroup(bb.get(),
                                      inst->blockTargets()[0]);
                    bc.g1 = edgeGroup(bb.get(),
                                      inst->blockTargets()[1]);
                } else {
                    bc.op = BcOp::Jmp;
                    bc.a = blockPc.at(inst->blockTargets()[0]);
                    bc.g0 = edgeGroup(bb.get(),
                                      inst->blockTargets()[0]);
                }
                break;
              case Opcode::Ret:
                if (inst->numOperands() == 0) {
                    bc.op = BcOp::RetVoid;
                } else {
                    bc.op = BcOp::Ret;
                    bc.a = slotOf(inst->operand(0));
                }
                break;
              case Opcode::SExt:
              case Opcode::ZExt:
              case Opcode::FPExt:
                bc.op = BcOp::Mov;
                bc.a = slotOf(inst->operand(0));
                break;
              case Opcode::Trunc:
                bc.op = inst->type()->kind() == Type::Kind::I32
                            ? BcOp::TruncI32
                        : inst->type()->kind() == Type::Kind::I1
                            ? BcOp::TruncI1
                            : BcOp::Mov;
                bc.a = slotOf(inst->operand(0));
                break;
              case Opcode::SIToFP:
                bc.op = BcOp::SIToFP;
                bc.round = floatResultRounds(inst->type());
                bc.a = slotOf(inst->operand(0));
                break;
              case Opcode::FPToSI:
                bc.op = BcOp::FPToSI;
                bc.a = slotOf(inst->operand(0));
                break;
              case Opcode::FPTrunc:
                bc.op = BcOp::FPTrunc;
                bc.a = slotOf(inst->operand(0));
                break;
              case Opcode::Call:
                bc.op = BcOp::Call;
                bc.imm = callees_.size();
                callees_.push_back(inst->callee());
                bc.extraBegin = static_cast<uint32_t>(extra_.size());
                for (size_t k = 0; k < inst->numOperands(); ++k) {
                    extra_.push_back(slotOf(inst->operand(k)));
                    scales_.push_back(0); // keep scales_ aligned
                }
                bc.extraEnd = static_cast<uint32_t>(extra_.size());
                break;
            }
            code_.push_back(bc);
        }
    }
}

// ----------------------------------------------------------- execution

RuntimeValue
CompiledExec::run(Interpreter &it, ir::Function *func,
                  const std::vector<RuntimeValue> &args, int depth)
{
    if (depth > 64)
        throw FatalError("interpreter: call depth exceeded");
    if (func->isDeclaration()) {
        if (func->name() == kHardenTrapFunction) {
            throw FaultDetected(
                "hardening check tripped in a protected function");
        }
        auto nat = it.natives_.find(func->name());
        if (nat == it.natives_.end()) {
            throw FatalError("interpreter: no native handler for @" +
                             func->name());
        }
        return nat->second(args, it);
    }
    reproAssert(args.size() == func->numArgs(),
                "interpreter: wrong argument count");

    const CompiledFunction &cf = it.compiledFor(func);
    std::vector<RuntimeValue> slots = cf.frameTemplate();
    for (size_t i = 0; i < args.size(); ++i)
        slots[i] = args[i];
    for (const auto &[slot, global] : cf.globalSlots()) {
        slots[slot] = RuntimeValue::makeInt(
            static_cast<int64_t>(it.globalAddrs_.at(global)));
    }

    uint64_t *prof =
        it.profiling_ ? it.profileBufferFor(cf) : nullptr;
    uint64_t &steps = it.steps_;
    const uint64_t limit = it.stepLimit_;
    Memory &mem = it.mem_;
    const BcInst *code = cf.code().data();
    const uint32_t *extra = cf.extra().data();
    const uint64_t *scales = cf.scales().data();
    std::vector<RuntimeValue> moveScratch;
    const bool faultHere =
        it.fault_ && func->name() == it.fault_->function;

    // Applies the phi moves of one CFG edge: every member phi is
    // charged one dynamic instruction (matching the reference
    // engine's per-phi accounting), all sources are read before any
    // destination is written.
    auto applyMoves = [&](uint32_t groupId) {
        if (groupId == BcInst::kNoGroup)
            return;
        const BcMoveGroup &g = cf.moveGroup(groupId);
        if (g.trap) {
            throw FatalError(
                "interpreter: phi without incoming for pred");
        }
        for (uint32_t k = 0; k < g.count; ++k) {
            // Phi boundaries charge the fault counter but never fire
            // (the reference engine fires only before non-phi
            // instructions; BcInsts exclude phis, so the engines'
            // fireable boundary sets coincide).
            if (faultHere)
                ++it.faultCounter_;
            if (++steps > limit)
                throw FatalError("interpreter: step limit exceeded");
            if (prof) {
                ++prof[g.profBegin + k];
                ++it.profile_.totalSteps;
            }
        }
        const BcMove *mv = cf.moves().data() + g.movesBegin;
        if (g.count == 1) {
            slots[mv[0].dst] = slots[mv[0].src];
            return;
        }
        moveScratch.clear();
        for (uint32_t k = 0; k < g.count; ++k)
            moveScratch.push_back(slots[mv[k].src]);
        for (uint32_t k = 0; k < g.count; ++k)
            slots[mv[k].dst] = moveScratch[k];
    };

    uint32_t pc = cf.entryPc();
    while (true) {
        const BcInst &bc = code[pc];
        if (faultHere) {
            // Mirrors the reference engine: fire before executing a
            // non-phi instruction (every BcInst is one), then charge.
            if (!it.faultFired_ && it.faultCounter_ >= it.fault_->step) {
                it.faultFired_ = true;
                if (cf.faultSlotCount() != 0) {
                    uint32_t j =
                        it.fault_->valueIndex % cf.faultSlotCount();
                    flipFaultBits(cf.faultKind(j), slots[j],
                                  it.fault_->bit);
                }
            }
            ++it.faultCounter_;
        }
        if (++steps > limit)
            throw FatalError("interpreter: step limit exceeded");
        if (prof) {
            ++prof[bc.prof];
            ++it.profile_.totalSteps;
        }

        switch (bc.op) {
          case BcOp::Add:
            slots[bc.dst] =
                RuntimeValue::makeInt(slots[bc.a].i + slots[bc.b].i);
            ++pc;
            break;
          case BcOp::Sub:
            slots[bc.dst] =
                RuntimeValue::makeInt(slots[bc.a].i - slots[bc.b].i);
            ++pc;
            break;
          case BcOp::Mul:
            slots[bc.dst] =
                RuntimeValue::makeInt(slots[bc.a].i * slots[bc.b].i);
            ++pc;
            break;
          case BcOp::SDiv: {
            int64_t d = slots[bc.b].i;
            if (d == 0)
                throw FatalError("interpreter: division by zero");
            slots[bc.dst] = RuntimeValue::makeInt(slots[bc.a].i / d);
            ++pc;
            break;
          }
          case BcOp::SRem: {
            int64_t d = slots[bc.b].i;
            if (d == 0)
                throw FatalError("interpreter: remainder by zero");
            slots[bc.dst] = RuntimeValue::makeInt(slots[bc.a].i % d);
            ++pc;
            break;
          }
          case BcOp::And:
            slots[bc.dst] =
                RuntimeValue::makeInt(slots[bc.a].i & slots[bc.b].i);
            ++pc;
            break;
          case BcOp::Or:
            slots[bc.dst] =
                RuntimeValue::makeInt(slots[bc.a].i | slots[bc.b].i);
            ++pc;
            break;
          case BcOp::Xor:
            slots[bc.dst] =
                RuntimeValue::makeInt(slots[bc.a].i ^ slots[bc.b].i);
            ++pc;
            break;
          case BcOp::Shl:
            slots[bc.dst] = RuntimeValue::makeInt(
                slots[bc.a].i << (slots[bc.b].i & 63));
            ++pc;
            break;
          case BcOp::AShr:
            slots[bc.dst] = RuntimeValue::makeInt(
                slots[bc.a].i >> (slots[bc.b].i & 63));
            ++pc;
            break;
          case BcOp::FAdd: {
            double v = slots[bc.a].f + slots[bc.b].f;
            slots[bc.dst] =
                RuntimeValue::makeFP(bc.round ? roundToFloatPrecision(v) : v);
            ++pc;
            break;
          }
          case BcOp::FSub: {
            double v = slots[bc.a].f - slots[bc.b].f;
            slots[bc.dst] =
                RuntimeValue::makeFP(bc.round ? roundToFloatPrecision(v) : v);
            ++pc;
            break;
          }
          case BcOp::FMul: {
            double v = slots[bc.a].f * slots[bc.b].f;
            slots[bc.dst] =
                RuntimeValue::makeFP(bc.round ? roundToFloatPrecision(v) : v);
            ++pc;
            break;
          }
          case BcOp::FDiv: {
            double v = slots[bc.a].f / slots[bc.b].f;
            slots[bc.dst] =
                RuntimeValue::makeFP(bc.round ? roundToFloatPrecision(v) : v);
            ++pc;
            break;
          }
          case BcOp::LoadI1:
            slots[bc.dst] = RuntimeValue::makeInt(
                mem.load<uint8_t>(
                    static_cast<uint64_t>(slots[bc.a].i)) != 0);
            ++pc;
            break;
          case BcOp::LoadI32:
            slots[bc.dst] = RuntimeValue::makeInt(mem.load<int32_t>(
                static_cast<uint64_t>(slots[bc.a].i)));
            ++pc;
            break;
          case BcOp::LoadI64:
            slots[bc.dst] = RuntimeValue::makeInt(mem.load<int64_t>(
                static_cast<uint64_t>(slots[bc.a].i)));
            ++pc;
            break;
          case BcOp::LoadF32:
            slots[bc.dst] = RuntimeValue::makeFP(mem.load<float>(
                static_cast<uint64_t>(slots[bc.a].i)));
            ++pc;
            break;
          case BcOp::LoadF64:
            slots[bc.dst] = RuntimeValue::makeFP(mem.load<double>(
                static_cast<uint64_t>(slots[bc.a].i)));
            ++pc;
            break;
          case BcOp::LoadPtr:
            slots[bc.dst] = RuntimeValue::makeInt(
                static_cast<int64_t>(mem.load<uint64_t>(
                    static_cast<uint64_t>(slots[bc.a].i))));
            ++pc;
            break;
          case BcOp::StoreI1:
            mem.store<uint8_t>(static_cast<uint64_t>(slots[bc.b].i),
                               slots[bc.a].i != 0);
            ++pc;
            break;
          case BcOp::StoreI32:
            mem.store<int32_t>(static_cast<uint64_t>(slots[bc.b].i),
                               static_cast<int32_t>(slots[bc.a].i));
            ++pc;
            break;
          case BcOp::StoreI64:
            mem.store<int64_t>(static_cast<uint64_t>(slots[bc.b].i),
                               slots[bc.a].i);
            ++pc;
            break;
          case BcOp::StoreF32:
            mem.store<float>(static_cast<uint64_t>(slots[bc.b].i),
                             static_cast<float>(slots[bc.a].f));
            ++pc;
            break;
          case BcOp::StoreF64:
            mem.store<double>(static_cast<uint64_t>(slots[bc.b].i),
                              slots[bc.a].f);
            ++pc;
            break;
          case BcOp::StorePtr:
            mem.store<uint64_t>(static_cast<uint64_t>(slots[bc.b].i),
                                static_cast<uint64_t>(slots[bc.a].i));
            ++pc;
            break;
          case BcOp::Gep: {
            uint64_t addr = static_cast<uint64_t>(slots[bc.a].i);
            for (uint32_t k = bc.extraBegin; k < bc.extraEnd; ++k) {
                addr += static_cast<uint64_t>(slots[extra[k]].i) *
                        scales[k];
            }
            slots[bc.dst] =
                RuntimeValue::makeInt(static_cast<int64_t>(addr));
            ++pc;
            break;
          }
          case BcOp::Alloca:
            slots[bc.dst] = RuntimeValue::makeInt(
                static_cast<int64_t>(mem.allocate(bc.imm)));
            ++pc;
            break;
          case BcOp::ICmp: {
            int64_t a = slots[bc.a].i;
            int64_t b = slots[bc.b].i;
            bool r = false;
            switch (bc.pred) {
              case ir::CmpPred::EQ: r = a == b; break;
              case ir::CmpPred::NE: r = a != b; break;
              case ir::CmpPred::LT: r = a < b; break;
              case ir::CmpPred::LE: r = a <= b; break;
              case ir::CmpPred::GT: r = a > b; break;
              case ir::CmpPred::GE: r = a >= b; break;
            }
            slots[bc.dst] = RuntimeValue::makeInt(r);
            ++pc;
            break;
          }
          case BcOp::FCmp: {
            double a = slots[bc.a].f;
            double b = slots[bc.b].f;
            bool r = false;
            switch (bc.pred) {
              case ir::CmpPred::EQ: r = a == b; break;
              case ir::CmpPred::NE: r = a != b; break;
              case ir::CmpPred::LT: r = a < b; break;
              case ir::CmpPred::LE: r = a <= b; break;
              case ir::CmpPred::GT: r = a > b; break;
              case ir::CmpPred::GE: r = a >= b; break;
            }
            slots[bc.dst] = RuntimeValue::makeInt(r);
            ++pc;
            break;
          }
          case BcOp::Select:
            slots[bc.dst] =
                slots[bc.a].i != 0 ? slots[bc.b] : slots[bc.c];
            ++pc;
            break;
          case BcOp::Jmp:
            applyMoves(bc.g0);
            pc = bc.a;
            break;
          case BcOp::CondBr:
            if (slots[bc.a].i != 0) {
                applyMoves(bc.g0);
                pc = bc.b;
            } else {
                applyMoves(bc.g1);
                pc = bc.c;
            }
            break;
          case BcOp::Ret:
            return slots[bc.a];
          case BcOp::RetVoid:
            return RuntimeValue::makeVoid();
          case BcOp::Mov:
            slots[bc.dst] = slots[bc.a];
            ++pc;
            break;
          case BcOp::TruncI32:
            slots[bc.dst] = RuntimeValue::makeInt(
                static_cast<int32_t>(slots[bc.a].i));
            ++pc;
            break;
          case BcOp::TruncI1:
            slots[bc.dst] = RuntimeValue::makeInt(slots[bc.a].i & 1);
            ++pc;
            break;
          case BcOp::SIToFP: {
            double v = static_cast<double>(slots[bc.a].i);
            slots[bc.dst] =
                RuntimeValue::makeFP(bc.round ? roundToFloatPrecision(v) : v);
            ++pc;
            break;
          }
          case BcOp::FPToSI:
            slots[bc.dst] = RuntimeValue::makeInt(
                static_cast<int64_t>(slots[bc.a].f));
            ++pc;
            break;
          case BcOp::FPTrunc:
            slots[bc.dst] =
                RuntimeValue::makeFP(roundToFloatPrecision(slots[bc.a].f));
            ++pc;
            break;
          case BcOp::Call: {
            std::vector<RuntimeValue> cargs;
            cargs.reserve(bc.extraEnd - bc.extraBegin);
            for (uint32_t k = bc.extraBegin; k < bc.extraEnd; ++k)
                cargs.push_back(slots[extra[k]]);
            RuntimeValue r =
                run(it, cf.callee(bc.imm), cargs, depth + 1);
            if (bc.dst != BcInst::kNoSlot)
                slots[bc.dst] = r;
            ++pc;
            break;
          }
          case BcOp::Trap:
            throw FatalError(cf.trapMessage(bc.imm));
        }
    }
}

} // namespace repro::interp
