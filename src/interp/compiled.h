/**
 * @file
 * Register-addressed bytecode compilation of IR functions.
 *
 * The tree-walking reference interpreter pays, per dynamic
 * instruction, an `unordered_map` lookup per operand, a map insertion
 * per result, a string-free but branchy opcode dispatch, and — when
 * profiling — a `std::map<const Instruction *, uint64_t>` bump. Now
 * that PR 3 made matching ~10x faster, that is the dominant cost of
 * every end-to-end experiment (Figures 16-19). Compilation removes
 * all of it from the execution loop, mirroring the solver's
 * slot-addressed compile step (solver/compiled.h):
 *
 *  - every value (argument, instruction result, interned constant,
 *    global address) gets a dense `uint32_t` slot in a flat frame of
 *    RuntimeValues, so an operand read is one vector index and a
 *    result write is one vector store;
 *  - instructions become one contiguous `BcInst` array in block
 *    layout order; branches are pre-resolved program-counter jumps,
 *    types are pre-resolved into specialized opcodes (LoadF64,
 *    StoreI32, ...), GEP scales and alloca sizes are pre-computed
 *    immediates, and float-rounding is a pre-computed flag;
 *  - phi groups are pre-resolved into per-CFG-edge parallel move
 *    groups: taking an edge copies the incoming slots of the target
 *    block's phis (through a scratch buffer, preserving the atomic
 *    group semantics) instead of scanning instructions and hashing
 *    values at run time;
 *  - profile counters are a dense `uint64_t[]` indexed by instruction
 *    slot, merged into the name-keyed Profile map once per run
 *    instead of a map bump per dynamic instruction.
 *
 * A CompiledFunction is immutable after construction. The Interpreter
 * owns one per executed function and keeps the tree-walker as
 * Interpreter::runReference; both engines must produce byte-identical
 * heaps, return values and Profile counts (the differential contract
 * tests/test_interp_compiled.cpp and MatchingDriver::verifyTransforms
 * enforce across the whole benchmark suite).
 */
#ifndef INTERP_COMPILED_H
#define INTERP_COMPILED_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "ir/function.h"

namespace repro::interp {

/** Bytecode operations; memory/conversion ops are type-specialized. */
enum class BcOp : uint8_t
{
    // Integer arithmetic: dst = a op b.
    Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, AShr,
    // Floating point arithmetic: dst = a op b (round flag honored).
    FAdd, FSub, FMul, FDiv,
    // Memory: Load* dst = [a]; Store* [b] = a.
    LoadI1, LoadI32, LoadI64, LoadF32, LoadF64, LoadPtr,
    StoreI1, StoreI32, StoreI64, StoreF32, StoreF64, StorePtr,
    // dst = a + sum(slot_k * scale_k) over extra[extraBegin, extraEnd).
    Gep,
    // dst = allocate(imm).
    Alloca,
    // Comparisons (pred field) and selection dst = a ? b : c.
    ICmp, FCmp, Select,
    // Control flow: Jmp to pc a (edge moves g0); CondBr on a to pc
    // b (moves g0) or pc c (moves g1); Ret returns slot a.
    Jmp, CondBr, Ret, RetVoid,
    // Conversions: Mov covers SExt/ZExt/FPExt (no-ops on the
    // RuntimeValue representation).
    Mov, TruncI32, TruncI1, SIToFP, FPToSI, FPTrunc,
    // dst = callee(imm)(extra slots); dst absent for void callees.
    Call,
    // Always throws FatalError(trapMessage(imm)); compiled in place
    // of operations the tree-walker would reject at execution time.
    Trap,
};

/** One bytecode instruction. */
struct BcInst
{
    static constexpr uint32_t kNoSlot = 0xffffffffu;
    static constexpr uint32_t kNoGroup = 0xffffffffu;

    BcOp op = BcOp::Trap;
    /** FAdd/FSub/FMul/FDiv/SIToFP: round result to float precision. */
    bool round = false;
    ir::CmpPred pred = ir::CmpPred::EQ;
    uint32_t dst = kNoSlot;
    uint32_t a = 0, b = 0, c = 0;
    /** Edge move-group ids of Jmp (g0) and CondBr (g0 true, g1 false). */
    uint32_t g0 = kNoGroup, g1 = kNoGroup;
    /** Dense profile index of the source IR instruction. */
    uint32_t prof = 0;
    /** Alloca size / Call callee index / Trap message index. */
    uint64_t imm = 0;
    /** Gep index slots (paired with scales) / Call argument slots. */
    uint32_t extraBegin = 0, extraEnd = 0;
};

/** One pre-resolved phi move: frame[dst] = frame[src]. */
struct BcMove
{
    uint32_t dst = 0;
    uint32_t src = 0;
};

/**
 * The phi moves of one CFG edge. All sources are read before any
 * destination is written (the group is atomic, as in the
 * tree-walker), and each member phi is charged one dynamic
 * instruction: profile indices [profBegin, profBegin + count).
 */
struct BcMoveGroup
{
    uint32_t movesBegin = 0;
    uint32_t count = 0;
    uint32_t profBegin = 0;
    /** Edge whose phi had no incoming for the predecessor: taking it
     *  throws (matches the tree-walker's execution-time error). */
    bool trap = false;
};

/** An ir::Function lowered to bytecode. Immutable after construction. */
class CompiledFunction
{
  public:
    explicit CompiledFunction(const ir::Function &func);

    const std::vector<BcInst> &code() const { return code_; }
    uint32_t entryPc() const { return entryPc_; }
    uint32_t numSlots() const
    {
        return static_cast<uint32_t>(frameTemplate_.size());
    }

    /** Fresh frame with constants pre-evaluated; callers fill
     *  argument and global slots. */
    const std::vector<RuntimeValue> &frameTemplate() const
    {
        return frameTemplate_;
    }

    /** (slot, global) pairs the executor resolves per Interpreter. */
    const std::vector<std::pair<uint32_t, const ir::GlobalVariable *>> &
    globalSlots() const
    {
        return globalSlots_;
    }

    const std::vector<uint32_t> &extra() const { return extra_; }
    /** GEP scale factors, parallel to the Gep extra slot range. */
    const std::vector<uint64_t> &scales() const { return scales_; }
    const std::vector<BcMove> &moves() const { return moves_; }
    const BcMoveGroup &moveGroup(uint32_t id) const
    {
        return groups_[id];
    }
    ir::Function *callee(uint64_t idx) const { return callees_[idx]; }
    const std::string &trapMessage(uint64_t idx) const
    {
        return trapMessages_[idx];
    }

    /** Number of profiled (= all) instructions of the function. */
    uint32_t numProfiled() const
    {
        return static_cast<uint32_t>(profInsts_.size());
    }

    /** Source instruction of dense profile index @p i. */
    const std::vector<const ir::Instruction *> &profInstructions() const
    {
        return profInsts_;
    }

    /**
     * Number of fault-injectable frame slots: the arguments and
     * non-void instruction results, which pass 1 assigns the
     * contiguous slot prefix [0, faultSlotCount()) in exactly
     * faultValueList() order (constants and globals get later slots).
     */
    uint32_t faultSlotCount() const
    {
        return static_cast<uint32_t>(faultKinds_.size());
    }

    /** IR type kind of injectable slot @p i (for flipFaultBits). */
    ir::Type::Kind faultKind(uint32_t i) const { return faultKinds_[i]; }

  private:
    uint32_t slotOf(const ir::Value *v);
    void compile(const ir::Function &func);

    std::vector<BcInst> code_;
    std::vector<uint32_t> extra_;
    std::vector<uint64_t> scales_;
    std::vector<BcMove> moves_;
    std::vector<BcMoveGroup> groups_;
    std::vector<RuntimeValue> frameTemplate_;
    std::vector<std::pair<uint32_t, const ir::GlobalVariable *>>
        globalSlots_;
    std::vector<ir::Function *> callees_;
    std::vector<std::string> trapMessages_;
    std::vector<const ir::Instruction *> profInsts_;
    std::vector<ir::Type::Kind> faultKinds_;
    std::map<const ir::Value *, uint32_t> slots_;
    uint32_t entryPc_ = 0;
};

/** The bytecode executor; a friend of Interpreter. */
class CompiledExec
{
  public:
    /** Execute @p func (compiling it on first use) with @p args. */
    static RuntimeValue run(Interpreter &interp, ir::Function *func,
                            const std::vector<RuntimeValue> &args,
                            int depth);
};

} // namespace repro::interp

#endif // INTERP_COMPILED_H
