/**
 * @file
 * Interpreters for the SSA IR.
 *
 * The execution layer fills two roles in the reproduction:
 *  - executing benchmark kernels before and after idiom replacement to
 *    verify that transformations preserve semantics; and
 *  - profiling dynamic instruction counts per loop/instruction, which
 *    drives the runtime-coverage experiment (Figure 17 of the paper).
 *
 * Two engines share one Interpreter object and are required to be
 * observably identical (byte-identical heaps, return values and
 * Profile counts — tests/test_interp_compiled.cpp enforces it):
 *
 *  - run() lowers each function to register-addressed bytecode
 *    (interp/compiled.h) on first execution and runs that — the fast
 *    path every benchmark uses; and
 *  - runReference() walks the IR tree directly — the slow,
 *    obviously-correct engine kept as the differential-testing
 *    baseline, exactly like Solver::solveAllReference on the
 *    matching side.
 */
#ifndef INTERP_INTERPRETER_H
#define INTERP_INTERPRETER_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "interp/memory.h"
#include "ir/function.h"

namespace repro::interp {

/** A dynamic value: integer (includes pointers) or floating point. */
struct RuntimeValue
{
    enum class Kind { Int, FP, Void };

    Kind kind = Kind::Void;
    int64_t i = 0;
    double f = 0.0;

    static RuntimeValue
    makeInt(int64_t v)
    {
        RuntimeValue out;
        out.kind = Kind::Int;
        out.i = v;
        return out;
    }
    static RuntimeValue
    makeFP(double v)
    {
        RuntimeValue out;
        out.kind = Kind::FP;
        out.f = v;
        return out;
    }
    static RuntimeValue makeVoid() { return {}; }

    /**
     * Bitwise equality (NaN-safe): the engines' byte-identical
     * contract — stricter than operator== on doubles would be.
     */
    static bool
    bitsEqual(const RuntimeValue &a, const RuntimeValue &b)
    {
        return a.kind == b.kind && a.i == b.i &&
               std::memcmp(&a.f, &b.f, sizeof(double)) == 0;
    }
};

class Interpreter;
class CompiledFunction;

/** Round to float precision (via an actual float round-trip). */
inline double
roundToFloatPrecision(double v)
{
    return static_cast<double>(static_cast<float>(v));
}

/**
 * The shared rounding rule of both execution engines: float-typed
 * results round to float precision so native skeletons, the bytecode
 * engine and the tree-walker agree bit for bit. The predicate is
 * exposed separately so the bytecode compiler can bake it into a
 * per-instruction flag.
 */
inline bool
floatResultRounds(const ir::Type *type)
{
    return type->kind() == ir::Type::Kind::Float;
}

inline double
roundIfFloat(const ir::Type *type, double v)
{
    return floatResultRounds(type) ? roundToFloatPrecision(v) : v;
}

/**
 * Signature of a native handler standing in for an external API. The
 * interpreter reference lets heterogeneous-API skeletons call back
 * into extracted IR kernel functions.
 */
using NativeFn = std::function<RuntimeValue(
    const std::vector<RuntimeValue> &args, Interpreter &interp)>;

/** Per-instruction dynamic execution counts. */
struct Profile
{
    std::map<const ir::Instruction *, uint64_t> counts;
    uint64_t totalSteps = 0;

    /** Dynamic instructions attributed to instructions in @p set. */
    uint64_t countIn(const std::set<const ir::Instruction *> &set) const;
};

/** Executes IR functions over a Memory heap. */
class Interpreter
{
  public:
    // Constructor and destructor are out of line: members reference
    // CompiledFunction, which is incomplete here (interp/compiled.h
    // completes it for interpreter.cpp).
    explicit Interpreter(ir::Module &module, Memory &mem);
    ~Interpreter();

    /**
     * Register a native implementation for calls to the declared
     * function @p name (the heterogeneous API entry points).
     */
    void registerNative(const std::string &name, NativeFn fn);

    /**
     * Execute @p func with @p args via the bytecode engine; returns
     * its return value. Functions are compiled lazily and cached for
     * the lifetime of this Interpreter — construct a fresh
     * Interpreter after mutating the module (the transformation
     * pipeline already does).
     */
    RuntimeValue run(ir::Function *func,
                     const std::vector<RuntimeValue> &args);

    /**
     * Execute @p func via the tree-walking reference engine. Same
     * observable behavior as run(), kept for differential testing.
     */
    RuntimeValue runReference(ir::Function *func,
                              const std::vector<RuntimeValue> &args);

    /**
     * Re-entrant call used by native skeletons to run IR kernels.
     * Dispatches to whichever engine the enclosing run started.
     */
    RuntimeValue call(ir::Function *func,
                      const std::vector<RuntimeValue> &args);

    ir::Module &module() { return module_; }

    /** Abort execution after this many dynamic instructions. */
    void setStepLimit(uint64_t limit) { stepLimit_ = limit; }

    void enableProfile(bool on) { profiling_ = on; }
    const Profile &profile() const { return profile_; }
    void clearProfile();

    Memory &memory() { return mem_; }

  private:
    friend class CompiledExec;

    enum class Engine { Compiled, Reference };

    RuntimeValue evalConstant(const ir::Constant *c) const;
    RuntimeValue runFunction(ir::Function *func,
                             const std::vector<RuntimeValue> &args,
                             int depth);

    /** Give every module global a heap address (idempotent). */
    void materializeGlobals();

    /** Bytecode of @p func, compiled on first request. */
    const CompiledFunction &compiledFor(ir::Function *func);

    /** Dense per-instruction counters of @p cf (lazily sized). */
    uint64_t *profileBufferFor(const CompiledFunction &cf);

    /** Merge the dense bytecode counters into profile_.counts. */
    void flushProfileBuffers();

    ir::Module &module_;
    Memory &mem_;
    std::map<std::string, NativeFn> natives_;
    std::map<const ir::GlobalVariable *, uint64_t> globalAddrs_;
    uint64_t stepLimit_ = 5'000'000'000ULL;
    uint64_t steps_ = 0;
    bool profiling_ = false;
    Profile profile_;
    Engine engine_ = Engine::Compiled;
    std::map<const ir::Function *, std::unique_ptr<CompiledFunction>>
        compiled_;
    std::map<const CompiledFunction *, std::vector<uint64_t>>
        profileBuffers_;
};

} // namespace repro::interp

#endif // INTERP_INTERPRETER_H
