/**
 * @file
 * Interpreters for the SSA IR.
 *
 * The execution layer fills two roles in the reproduction:
 *  - executing benchmark kernels before and after idiom replacement to
 *    verify that transformations preserve semantics; and
 *  - profiling dynamic instruction counts per loop/instruction, which
 *    drives the runtime-coverage experiment (Figure 17 of the paper).
 *
 * Two engines share one Interpreter object and are required to be
 * observably identical (byte-identical heaps, return values and
 * Profile counts — tests/test_interp_compiled.cpp enforces it):
 *
 *  - run() lowers each function to register-addressed bytecode
 *    (interp/compiled.h) on first execution and runs that — the fast
 *    path every benchmark uses; and
 *  - runReference() walks the IR tree directly — the slow,
 *    obviously-correct engine kept as the differential-testing
 *    baseline, exactly like Solver::solveAllReference on the
 *    matching side.
 */
#ifndef INTERP_INTERPRETER_H
#define INTERP_INTERPRETER_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/memory.h"
#include "ir/function.h"
#include "ir/verifier.h"

namespace repro::interp {

/**
 * Name of the reliability-hardening trap function. Calls to a
 * declaration with this name throw FaultDetected in both engines,
 * before any native-handler lookup: hardened code (transform/harden)
 * branches to it when a duplicated computation or a control-flow
 * signature diverges.
 */
inline constexpr const char *kHardenTrapFunction = "__harden_fault";

/**
 * Raised when hardened code detects a fault at runtime. Deliberately
 * distinct from FatalError: the fault-injection campaign classifies
 * FaultDetected as "detected by the hardening checks" and FatalError
 * (out-of-bounds access, division by zero, step-limit watchdog) as
 * "crashed", a system-level detection the passes get no credit for.
 */
class FaultDetected : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A deterministic single-bit fault. The interpreter flips exactly one
 * bit in one value slot of one dynamic execution of @p function: at
 * the first instruction boundary (before executing a non-phi
 * instruction in a frame of the target function) where the fault
 * counter has reached @p step, bit @p bit of the runtime value of
 * faultValueList(func)[valueIndex % size] is inverted. The counter
 * advances exactly like the dynamic step counter restricted to the
 * target function's frames, so the same plan hits the same dynamic
 * site in the bytecode and the reference engine.
 */
struct FaultPlan
{
    std::string function;
    uint64_t step = 0;
    uint32_t valueIndex = 0;
    uint32_t bit = 0;
};

/** A dynamic value: integer (includes pointers) or floating point. */
struct RuntimeValue
{
    enum class Kind { Int, FP, Void };

    Kind kind = Kind::Void;
    int64_t i = 0;
    double f = 0.0;

    static RuntimeValue
    makeInt(int64_t v)
    {
        RuntimeValue out;
        out.kind = Kind::Int;
        out.i = v;
        return out;
    }
    static RuntimeValue
    makeFP(double v)
    {
        RuntimeValue out;
        out.kind = Kind::FP;
        out.f = v;
        return out;
    }
    static RuntimeValue makeVoid() { return {}; }

    /**
     * Bitwise equality (NaN-safe): the engines' byte-identical
     * contract — stricter than operator== on doubles would be.
     */
    static bool
    bitsEqual(const RuntimeValue &a, const RuntimeValue &b)
    {
        return a.kind == b.kind && a.i == b.i &&
               std::memcmp(&a.f, &b.f, sizeof(double)) == 0;
    }
};

class Interpreter;
class CompiledFunction;

/** Round to float precision (via an actual float round-trip). */
inline double
roundToFloatPrecision(double v)
{
    return static_cast<double>(static_cast<float>(v));
}

/**
 * The shared rounding rule of both execution engines: float-typed
 * results round to float precision so native skeletons, the bytecode
 * engine and the tree-walker agree bit for bit. The predicate is
 * exposed separately so the bytecode compiler can bake it into a
 * per-instruction flag.
 */
inline bool
floatResultRounds(const ir::Type *type)
{
    return type->kind() == ir::Type::Kind::Float;
}

inline double
roundIfFloat(const ir::Type *type, double v)
{
    return floatResultRounds(type) ? roundToFloatPrecision(v) : v;
}

/**
 * Signature of a native handler standing in for an external API. The
 * interpreter reference lets heterogeneous-API skeletons call back
 * into extracted IR kernel functions.
 */
using NativeFn = std::function<RuntimeValue(
    const std::vector<RuntimeValue> &args, Interpreter &interp)>;

/**
 * The fault-injectable value slots of a function: arguments first,
 * then every non-void instruction in block layout order — exactly the
 * frame-slot order the bytecode compiler assigns (compiled.cpp pass
 * 1), so FaultPlan::valueIndex selects the same value in both
 * engines. Constants and globals are excluded: they are immutable
 * module state, not per-run values.
 */
std::vector<const ir::Value *> faultValueList(const ir::Function &func);

/**
 * Flip bit @p bit of @p v as a value of IR type @p kind. Integer
 * kinds flip within their width (I1 always flips the truth bit; both
 * engines keep I32 values sign-extended in a 64-bit lane, so only
 * the low 32 bits are targeted, without re-truncation). Float flips
 * in the 32-bit representation and widens back; Double flips in the
 * 64-bit representation.
 */
void flipFaultBits(ir::Type::Kind kind, RuntimeValue &v, uint32_t bit);

/** Per-instruction dynamic execution counts. */
struct Profile
{
    std::map<const ir::Instruction *, uint64_t> counts;
    uint64_t totalSteps = 0;

    /** Dynamic instructions attributed to instructions in @p set. */
    uint64_t countIn(const std::set<const ir::Instruction *> &set) const;
};

/** Executes IR functions over a Memory heap. */
class Interpreter
{
  public:
    // Constructor and destructor are out of line: members reference
    // CompiledFunction, which is incomplete here (interp/compiled.h
    // completes it for interpreter.cpp).
    explicit Interpreter(ir::Module &module, Memory &mem);
    ~Interpreter();

    /**
     * Register a native implementation for calls to the declared
     * function @p name (the heterogeneous API entry points).
     */
    void registerNative(const std::string &name, NativeFn fn);

    /**
     * Execute @p func with @p args via the bytecode engine; returns
     * its return value. Functions are compiled lazily and cached for
     * the lifetime of this Interpreter — construct a fresh
     * Interpreter after mutating the module (the transformation
     * pipeline already does).
     */
    RuntimeValue run(ir::Function *func,
                     const std::vector<RuntimeValue> &args);

    /**
     * Execute @p func via the tree-walking reference engine. Same
     * observable behavior as run(), kept for differential testing.
     */
    RuntimeValue runReference(ir::Function *func,
                              const std::vector<RuntimeValue> &args);

    /**
     * Re-entrant call used by native skeletons to run IR kernels.
     * Dispatches to whichever engine the enclosing run started.
     */
    RuntimeValue call(ir::Function *func,
                      const std::vector<RuntimeValue> &args);

    ir::Module &module() { return module_; }

    /** Abort execution after this many dynamic instructions. */
    void setStepLimit(uint64_t limit) { stepLimit_ = limit; }

    void enableProfile(bool on) { profiling_ = on; }
    const Profile &profile() const { return profile_; }
    void clearProfile();

    /**
     * Arm a single-bit fault injection for subsequent runs. The fault
     * counter and fired flag reset at every top-level run()/
     * runReference(), so one armed plan replays the identical fault
     * in either engine. A plan with step = UINT64_MAX never fires and
     * turns the counter into a pure charge probe: run once, then read
     * faultCounter() to learn how many injectable boundaries the
     * target function executed.
     */
    void
    armFault(const FaultPlan &plan)
    {
        fault_ = plan;
        faultFired_ = false;
        faultCounter_ = 0;
    }
    void disarmFault() { fault_.reset(); }
    /** Whether the armed fault has been injected already. */
    bool faultFired() const { return faultFired_; }
    /** Dynamic charges counted in the target function's frames. */
    uint64_t faultCounter() const { return faultCounter_; }
    /** Dynamic instructions executed by the last top-level run. */
    uint64_t stepsExecuted() const { return steps_; }

    Memory &memory() { return mem_; }

    /**
     * Pass-boundary verification of functions entering the bytecode
     * compiler. Defaults to the REPRO_VERIFY environment switch; with
     * VerifyMode::Boundaries every function is re-verified right
     * before its first lowering ("pre-bytecode" boundary), so the
     * executor can never run bytecode compiled from malformed IR.
     * The tree-walking reference engine is unaffected.
     */
    void setVerifyMode(ir::VerifyMode mode) { verify_ = mode; }
    ir::VerifyMode verifyMode() const { return verify_; }

  private:
    friend class CompiledExec;

    enum class Engine { Compiled, Reference };

    RuntimeValue evalConstant(const ir::Constant *c) const;
    RuntimeValue runFunction(ir::Function *func,
                             const std::vector<RuntimeValue> &args,
                             int depth);

    /** Give every module global a heap address (idempotent). */
    void materializeGlobals();

    /** Bytecode of @p func, compiled on first request. */
    const CompiledFunction &compiledFor(ir::Function *func);

    /** Dense per-instruction counters of @p cf (lazily sized). */
    uint64_t *profileBufferFor(const CompiledFunction &cf);

    /** Merge the dense bytecode counters into profile_.counts. */
    void flushProfileBuffers();

    /**
     * Inject the armed fault into the reference engine's environment:
     * resolves the plan's value slot against @p func and flips the
     * chosen bit of its current (possibly still undefined) value.
     */
    void
    injectFaultReference(
        const ir::Function *func,
        std::unordered_map<const ir::Value *, RuntimeValue> &env);

    ir::Module &module_;
    Memory &mem_;
    std::map<std::string, NativeFn> natives_;
    std::map<const ir::GlobalVariable *, uint64_t> globalAddrs_;
    uint64_t stepLimit_ = 5'000'000'000ULL;
    uint64_t steps_ = 0;
    bool profiling_ = false;
    Profile profile_;
    Engine engine_ = Engine::Compiled;
    ir::VerifyMode verify_ = ir::defaultVerifyMode();
    std::optional<FaultPlan> fault_;
    bool faultFired_ = false;
    uint64_t faultCounter_ = 0;
    std::map<const ir::Function *, std::unique_ptr<CompiledFunction>>
        compiled_;
    std::map<const CompiledFunction *, std::vector<uint64_t>>
        profileBuffers_;
};

} // namespace repro::interp

#endif // INTERP_INTERPRETER_H
