/**
 * @file
 * Reference interpreter for the SSA IR.
 *
 * The interpreter fills two roles in the reproduction:
 *  - executing benchmark kernels before and after idiom replacement to
 *    verify that transformations preserve semantics; and
 *  - profiling dynamic instruction counts per loop/instruction, which
 *    drives the runtime-coverage experiment (Figure 17 of the paper).
 */
#ifndef INTERP_INTERPRETER_H
#define INTERP_INTERPRETER_H

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "interp/memory.h"
#include "ir/function.h"

namespace repro::interp {

/** A dynamic value: integer (includes pointers) or floating point. */
struct RuntimeValue
{
    enum class Kind { Int, FP, Void };

    Kind kind = Kind::Void;
    int64_t i = 0;
    double f = 0.0;

    static RuntimeValue
    makeInt(int64_t v)
    {
        RuntimeValue out;
        out.kind = Kind::Int;
        out.i = v;
        return out;
    }
    static RuntimeValue
    makeFP(double v)
    {
        RuntimeValue out;
        out.kind = Kind::FP;
        out.f = v;
        return out;
    }
    static RuntimeValue makeVoid() { return {}; }
};

class Interpreter;

/**
 * Signature of a native handler standing in for an external API. The
 * interpreter reference lets heterogeneous-API skeletons call back
 * into extracted IR kernel functions.
 */
using NativeFn = std::function<RuntimeValue(
    const std::vector<RuntimeValue> &args, Interpreter &interp)>;

/** Per-instruction dynamic execution counts. */
struct Profile
{
    std::map<const ir::Instruction *, uint64_t> counts;
    uint64_t totalSteps = 0;

    /** Dynamic instructions attributed to instructions in @p set. */
    uint64_t countIn(const std::set<const ir::Instruction *> &set) const;
};

/** Executes IR functions over a Memory heap. */
class Interpreter
{
  public:
    explicit Interpreter(ir::Module &module, Memory &mem)
        : module_(module), mem_(mem)
    {}

    /**
     * Register a native implementation for calls to the declared
     * function @p name (the heterogeneous API entry points).
     */
    void registerNative(const std::string &name, NativeFn fn);

    /** Execute @p func with @p args; returns its return value. */
    RuntimeValue run(ir::Function *func,
                     const std::vector<RuntimeValue> &args);

    /** Re-entrant call used by native skeletons to run IR kernels. */
    RuntimeValue call(ir::Function *func,
                      const std::vector<RuntimeValue> &args);

    ir::Module &module() { return module_; }

    /** Abort execution after this many dynamic instructions. */
    void setStepLimit(uint64_t limit) { stepLimit_ = limit; }

    void enableProfile(bool on) { profiling_ = on; }
    const Profile &profile() const { return profile_; }
    void clearProfile() { profile_ = Profile(); }

    Memory &memory() { return mem_; }

  private:
    RuntimeValue evalConstant(const ir::Constant *c) const;
    RuntimeValue runFunction(ir::Function *func,
                             const std::vector<RuntimeValue> &args,
                             int depth);

    ir::Module &module_;
    Memory &mem_;
    std::map<std::string, NativeFn> natives_;
    std::map<const ir::GlobalVariable *, uint64_t> globalAddrs_;
    uint64_t stepLimit_ = 5'000'000'000ULL;
    uint64_t steps_ = 0;
    bool profiling_ = false;
    Profile profile_;
};

} // namespace repro::interp

#endif // INTERP_INTERPRETER_H
