#include "benchmarks/suite.h"

#include <cmath>

#include "support/diagnostics.h"

namespace repro::benchmarks {

using interp::Memory;
using interp::RuntimeValue;
using runtime::WorkProfile;
using idioms::IdiomClass;

namespace {

RuntimeValue
I(int64_t v)
{
    return RuntimeValue::makeInt(v);
}

uint64_t
allocDoubles(Memory &mem, size_t n, double (*f)(size_t))
{
    uint64_t addr = mem.allocate(n * 8);
    for (size_t i = 0; i < n; ++i)
        mem.store<double>(addr + 8 * i, f(i));
    return addr;
}

uint64_t
allocInts(Memory &mem, size_t n, int32_t (*f)(size_t))
{
    uint64_t addr = mem.allocate(n * 4);
    for (size_t i = 0; i < n; ++i)
        mem.store<int32_t>(addr + 4 * i, f(i));
    return addr;
}

double
waveA(size_t i)
{
    return 0.5 + 0.4 * std::sin(0.1 * static_cast<double>(i));
}

double
waveB(size_t i)
{
    return 0.3 + 0.01 * static_cast<double>(i % 37);
}

double
zeroD(size_t)
{
    return 0.0;
}

int32_t
zeroI(size_t)
{
    return 0;
}

WorkProfile
profileOf(IdiomClass cls, double flops, double bytes, double transfer,
          int invocations, bool lazy, double offload, double parallel,
          std::set<runtime::Api> apis)
{
    WorkProfile p;
    p.cls = cls;
    p.flops = flops;
    p.bytes = bytes;
    p.transferBytes = transfer;
    p.invocations = invocations;
    p.lazyCopyApplicable = lazy;
    p.offloadFraction = offload;
    p.parallel = parallel;
    p.allowedApis = std::move(apis);
    return p;
}

// ====================================================== NAS programs

// NAS BT: ADI-style sweeps (memory recurrences) dominate; five
// solution norms are scalar reductions.
// Idioms: 5 scalar reductions (1 Polly-visible, 3 ICC-visible).
const char *kBtSource = R"(
void bt_main(double *lhs, double *rhs, double *u, double *norms,
             int n) {
    for (int sweep = 0; sweep < 12; sweep++)
        for (int i = 1; i < n; i++)
            lhs[i] = lhs[i] - 0.3 * lhs[i-1] + 0.1 * rhs[i];
    double s0 = 0.0;
    for (int i = 0; i < 512; i++)
        s0 += rhs[i] * rhs[i];
    double s1 = 0.0;
    for (int i = 0; i < n; i++)
        s1 += u[i] * u[i];
    double s2 = 0.0;
    for (int i = 0; i < n; i++)
        s2 += lhs[i] * u[i];
    double s3 = 0.0;
    for (int i = 0; i < n; i++)
        s3 += fabs(rhs[i]);
    double m4 = 0.0;
    for (int i = 0; i < n; i++)
        m4 = u[i] > m4 ? u[i] : m4;
    norms[0] = s0; norms[1] = s1; norms[2] = s2;
    norms[3] = s3; norms[4] = m4;
}
)";

// NAS CG: three iterations of a conjugate-gradient step — two CSR
// SpMVs (Figure 4 of the paper) and three dot-product reductions.
// Idioms: 2 sparse ops + 3 scalar reductions.
const char *kCgSource = R"(
void cg_main(int n, int *rowstr, int *colidx, double *a, double *x,
             double *z, double *p, double *q, double *r) {
    for (int it = 0; it < 3; it++) {
        for (int j = 0; j < n; j++) {
            double d = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                d = d + a[k] * x[colidx[k]];
            z[j] = d;
        }
        double rho = 0.0;
        for (int j = 0; j < n; j++)
            rho += r[j] * r[j];
        for (int j = 0; j < n; j++)
            p[j] = r[j] + 0.5 * p[j];
        for (int j = 0; j < n; j++) {
            double d = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                d = d + a[k] * p[colidx[k]];
            q[j] = d;
        }
        double alpha = 0.0;
        for (int j = 0; j < n; j++)
            alpha += p[j] * q[j];
        double scale = rho / (alpha + 1.0);
        for (int j = 0; j < n; j++)
            x[j] = x[j] + scale * p[j];
        for (int j = 0; j < n; j++)
            r[j] = r[j] - scale * q[j];
        double err = 0.0;
        for (int j = 0; j < n; j++)
            err += (x[j] - z[j]) * (x[j] - z[j]);
        r[0] = r[0] + 0.000001 * err;
    }
}
)";

// NAS DC: data-cube aggregation; tuple ordering is a memory
// recurrence, two aggregations are reductions (one conditional).
// Idioms: 2 scalar reductions (1 Polly-visible, 1 ICC-visible).
const char *kDcSource = R"(
void dc_main(double *tuples, double *agg, int n) {
    for (int p = 0; p < 8; p++)
        for (int i = 1; i < n; i++)
            tuples[i] = tuples[i] + tuples[i-1] * 0.001;
    double d0 = 0.0;
    for (int i = 0; i < 1024; i++)
        d0 += tuples[i];
    double d1 = 0.0;
    for (int i = 0; i < n; i++)
        if (tuples[i] > 0.5)
            d1 += tuples[i];
    agg[0] = d0;
    agg[1] = d1;
}
)";

// NAS EP: LCG deviate generation is a sequential recurrence (about
// half the runtime); the gaussian tally is a generalized histogram.
// Idioms: 1 histogram + 1 scalar reduction.
const char *kEpSource = R"(
void ep_main(double *xs, double *q, double *sums, int n) {
    for (int i = 1; i < n; i++) {
        double t = xs[i-1] * 5477.0 + 0.5;
        xs[i] = t - floor(t / 4096.0) * 4096.0;
    }
    for (int i = 0; i < n; i++) {
        int l = (int)(xs[i] / 512.0);
        q[l] += 1.0;
    }
    double sx = 0.0;
    for (int i = 0; i < n; i++)
        sx += xs[i] > 2048.0 ? xs[i] : 0.0;
    sums[0] = sx;
}
)";

// NAS FT: strided butterfly recurrences plus three checksums.
// Idioms: 3 scalar reductions (1 Polly-visible, 2 ICC-visible).
const char *kFtSource = R"(
void ft_main(double *re, double *im, double *sums, int n) {
    for (int stage = 1; stage < 6; stage++)
        for (int i = 0; i < n - 32; i++) {
            re[i] = re[i] + 0.5 * re[i + 32];
            im[i] = im[i] - 0.5 * im[i + 32];
        }
    double f0 = 0.0;
    for (int i = 0; i < 1024; i++)
        f0 += re[i];
    double f1 = 0.0;
    for (int i = 0; i < n; i++)
        f1 += re[i] * im[i];
    double f2 = 0.0;
    for (int i = 0; i < n; i++)
        f2 += sqrt(re[i]*re[i] + im[i]*im[i]);
    sums[0] = f0; sums[1] = f1; sums[2] = f2;
}
)";

// NAS IS: bucket counting (histogram) dominates; rank verification
// is a plain integer reduction.
// Idioms: 1 histogram + 1 scalar reduction.
const char *kIsSource = R"(
void is_main(int *keys, int *count, int *sums, int n, int nbuckets) {
    for (int i = 0; i < n; i++)
        count[keys[i]] += 1;
    int s = 0;
    for (int i = 0; i < nbuckets; i++)
        s += count[i];
    sums[0] = s;
}
)";

// NAS LU: SSOR sweeps are memory recurrences; nine norm/error
// computations are scalar reductions.
// Idioms: 9 scalar reductions (5 ICC-visible).
const char *kLuSource = R"(
void lu_main(double *rsd, double *u, double *flux, double *norms,
             int n) {
    for (int sweep = 0; sweep < 10; sweep++) {
        for (int i = 1; i < n; i++)
            rsd[i] = rsd[i] - 0.25 * rsd[i-1] + 0.05 * u[i];
        for (int i = 1; i < n; i++)
            flux[i] = flux[i] + 0.125 * flux[i-1];
    }
    double v0 = 0.0;
    for (int i = 0; i < n; i++) v0 += rsd[i];
    double v1 = 0.0;
    for (int i = 0; i < n; i++) v1 += rsd[i] * rsd[i];
    double v2 = 0.0;
    for (int i = 0; i < n; i++) v2 += rsd[i] * u[i];
    double v3 = 0.0;
    for (int i = 0; i < n; i++) v3 += u[i];
    double v4 = 0.0;
    for (int i = 0; i < n; i++) v4 += u[i] * u[i];
    double v5 = 0.0;
    for (int i = 0; i < n; i++) v5 += fabs(rsd[i]);
    double v6 = 0.0;
    for (int i = 0; i < n; i++) v6 = flux[i] > v6 ? flux[i] : v6;
    double v7 = 0.0;
    for (int i = 0; i < n; i++)
        if (u[i] > 0.0)
            v7 += u[i];
    double v8 = 0.0;
    for (int i = 0; i < n; i++) v8 += sqrt(flux[i]*flux[i] + 1.0);
    norms[0]=v0; norms[1]=v1; norms[2]=v2; norms[3]=v3; norms[4]=v4;
    norms[5]=v5; norms[6]=v6; norms[7]=v7; norms[8]=v8;
}
)";

// NAS MG: the residual operator is a 7-point 3D stencil on a
// flattened grid; the convergence check is a reduction.
// Idioms: 1 stencil + 1 scalar reduction.
const char *kMgSource = R"(
void mg_main(double *u, double *v, double *r, double *sums,
             int n1, int n2, int n3) {
    for (int k = 1; k < n3 - 1; k++)
      for (int j = 1; j < n2 - 1; j++)
        for (int i = 1; i < n1 - 1; i++)
          r[i + n1*(j + n2*k)] = v[i + n1*(j + n2*k)]
            - 0.8 * u[i + n1*(j + n2*k)]
            + 0.1 * (u[(i-1) + n1*(j + n2*k)] + u[(i+1) + n1*(j + n2*k)]
                   + u[i + n1*((j-1) + n2*k)] + u[i + n1*((j+1) + n2*k)])
            + 0.05 * (u[i + n1*(j + n2*(k-1))]
                    + u[i + n1*(j + n2*(k+1))]);
    double s = 0.0;
    for (int i = 0; i < n1*n2*n3; i++)
        s += r[i] * r[i];
    sums[0] = sqrt(s);
}
)";

// NAS SP: like BT — ADI recurrences plus five norms.
// Idioms: 5 scalar reductions (3 ICC-visible).
const char *kSpSource = R"(
void sp_main(double *lhs, double *rhs, double *speed, double *norms,
             int n) {
    for (int sweep = 0; sweep < 12; sweep++)
        for (int i = 1; i < n; i++)
            lhs[i] = lhs[i] - 0.2 * lhs[i-1] + 0.15 * rhs[i];
    double s0 = 0.0;
    for (int i = 0; i < n; i++) s0 += rhs[i] * rhs[i];
    double s1 = 0.0;
    for (int i = 0; i < n; i++) s1 += speed[i];
    double s2 = 0.0;
    for (int i = 0; i < n; i++) s2 += speed[i] * rhs[i];
    double s3 = 0.0;
    for (int i = 0; i < n; i++) s3 += fabs(lhs[i]);
    double s4 = 0.0;
    for (int i = 0; i < n; i++) s4 = speed[i] > s4 ? speed[i] : s4;
    norms[0]=s0; norms[1]=s1; norms[2]=s2; norms[3]=s3; norms[4]=s4;
}
)";

// NAS UA: unstructured adaptive mesh — pointer-chasing recurrences
// plus six elementwise norms.
// Idioms: 6 scalar reductions (4 ICC-visible).
const char *kUaSource = R"(
void ua_main(double *mass, double *res, double *tmort, double *norms,
             int n) {
    for (int pass = 0; pass < 10; pass++)
        for (int i = 1; i < n; i++)
            tmort[i] = tmort[i] * 0.99 + tmort[i-1] * 0.01
                     + mass[i] * 0.001;
    double a0 = 0.0;
    for (int i = 0; i < n; i++) a0 += mass[i];
    double a1 = 0.0;
    for (int i = 0; i < n; i++) a1 += res[i] * res[i];
    double a2 = 0.0;
    for (int i = 0; i < n; i++) a2 += mass[i] * res[i];
    double a3 = 0.0;
    for (int i = 0; i < n; i++) a3 += sqrt(tmort[i] * tmort[i] + 1.0);
    double a4 = 0.0;
    for (int i = 0; i < n; i++) a4 += fabs(res[i]);
    double a5 = 0.0;
    for (int i = 0; i < n; i++) a5 = res[i] > a5 ? res[i] : a5;
    norms[0]=a0; norms[1]=a1; norms[2]=a2; norms[3]=a3; norms[4]=a4;
    norms[5]=a5;
}
)";

// ================================================== Parboil programs

// Parboil bfs: frontier expansion has data-dependent control and
// indirect writes; only the visited count is a reduction.
// Idioms: 1 scalar reduction.
const char *kBfsSource = R"(
void bfs_main(int *edges, int *visited, int *frontier, int *sums,
              int n) {
    for (int pass = 0; pass < 4; pass++)
        for (int i = 0; i < n; i++) {
            int v = edges[i];
            if (visited[v] == 0) {
                visited[v] = 1;
                frontier[i] = v;
            }
        }
    int cnt = 0;
    for (int i = 0; i < n; i++)
        cnt += visited[i];
    sums[0] = cnt;
}
)";

// Parboil cutcp: the grid sweep dominates; the per-cell potential
// accumulation over atoms is a (call-carrying) reduction.
// Idioms: 1 scalar reduction.
const char *kCutcpSource = R"(
void cutcp_main(double *atoms, double *grid, double *scratch,
                int natoms, int gdim, int nscratch) {
    for (int pass = 0; pass < 6; pass++)
        for (int i = 1; i < nscratch; i++)
            scratch[i] = scratch[i] * 0.75 + scratch[i-1] * 0.25;
    for (int j = 0; j < gdim; j++) {
        for (int k = 0; k < gdim; k++) {
            double dist = (double)(j * j + k * k) + 1.0;
            double pot = 0.0;
            for (int a = 0; a < natoms; a++)
                pot += 1.0 / sqrt(atoms[a] * atoms[a] + dist);
            grid[j * gdim + k] = pot;
        }
    }
}
)";

// Parboil histo: a saturating image histogram plus a second
// histogram over the first one's output.
// Idioms: 2 histogram reductions.
const char *kHistoSource = R"(
void histo_main(int *img, int *bins, int *final, int n, int nbins) {
    for (int i = 0; i < n; i++) {
        int v = img[i];
        if (bins[v] < 255)
            bins[v] += 1;
    }
    for (int i = 0; i < nbins; i++)
        final[bins[i] & 7] += 1;
}
)";

// Parboil lbm: three lattice sweeps, each a 3D stencil over a
// flattened grid with literal dimensions (Polly-friendly).
// Idioms: 3 stencils.
const char *kLbmSource = R"(
void lbm_main(double *f0, double *f1, double *f2) {
    for (int k = 1; k < 11; k++)
      for (int j = 1; j < 11; j++)
        for (int i = 1; i < 11; i++)
          f1[i + 12*(j + 12*k)] =
              0.6 * f0[i + 12*(j + 12*k)]
            + 0.1 * (f0[(i-1) + 12*(j + 12*k)]
                   + f0[(i+1) + 12*(j + 12*k)])
            + 0.1 * (f0[i + 12*((j-1) + 12*k)]
                   + f0[i + 12*((j+1) + 12*k)]);
    for (int k = 1; k < 11; k++)
      for (int j = 1; j < 11; j++)
        for (int i = 1; i < 11; i++)
          f2[i + 12*(j + 12*k)] =
              f1[i + 12*(j + 12*k)]
            - 0.05 * (f1[i + 12*(j + 12*(k-1))]
                    + f1[i + 12*(j + 12*(k+1))]);
    for (int k = 1; k < 11; k++)
      for (int j = 1; j < 11; j++)
        for (int i = 1; i < 11; i++)
          f0[i + 12*(j + 12*k)] =
              0.9 * f2[i + 12*(j + 12*k)]
            + 0.025 * (f2[(i-1) + 12*(j + 12*k)]
                     + f2[(i+1) + 12*(j + 12*k)]
                     + f2[i + 12*((j-1) + 12*k)]
                     + f2[i + 12*((j+1) + 12*k)]);
}
)";

// Parboil mri-gridding: the binning pass is a memory recurrence; two
// density corrections are plain reductions.
// Idioms: 2 scalar reductions.
const char *kMriGSource = R"(
void mrig_main(double *samples, double *dens, double *sums, int n) {
    for (int pass = 0; pass < 8; pass++)
        for (int i = 1; i < n; i++)
            dens[i] = dens[i] * 0.9 + dens[i-1] * 0.1
                    + samples[i] * 0.01;
    double g0 = 0.0;
    for (int i = 0; i < n; i++) g0 += dens[i];
    double g1 = 0.0;
    for (int i = 0; i < n; i++) g1 += dens[i] * samples[i];
    sums[0] = g0; sums[1] = g1;
}
)";

// Parboil mri-q: per-voxel Q accumulation over samples — two inner
// dot-product style reductions.
// Idioms: 2 scalar reductions.
const char *kMriQSource = R"(
void mriq_main(double *phir, double *phii, double *kx, double *qr,
               double *qi, int nvox, int nsamp) {
    for (int pass = 0; pass < 40; pass++)
        for (int s = 1; s < nsamp; s++)
            kx[s] = kx[s] * 0.9 + kx[s-1] * 0.1 + phir[s] * 0.01;
    for (int v = 0; v < nvox; v++) {
        double sr = 0.0;
        for (int s = 0; s < nsamp; s++)
            sr += phir[s] * kx[s];
        double si = 0.0;
        for (int s = 0; s < nsamp; s++)
            si += phii[s] * kx[s];
        qr[v] = sr * (double)(v + 1);
        qi[v] = si * (double)(v + 2);
    }
}
)";

// Parboil sad: sum of absolute differences via compare/select; the
// search bookkeeping is sequential.
// Idioms: 1 scalar reduction.
const char *kSadSource = R"(
void sad_main(int *cur, int *ref, int *best, int n) {
    for (int pass = 0; pass < 6; pass++)
        for (int i = 1; i < n; i++)
            ref[i] = ref[i] - (ref[i-1] / 2) + (cur[i] / 4);
    int s = 0;
    for (int i = 0; i < n; i++)
        s += cur[i] > ref[i] ? cur[i] - ref[i] : ref[i] - cur[i];
    best[0] = s;
}
)";

// Parboil sgemm: the strided single-precision GEMM of Figure 8.
// Idioms: 1 matrix op.
const char *kSgemmSource = R"(
void sgemm_main(float *A, int lda, float *B, int ldb, float *C,
                int ldc, int m, int n, int k,
                float alpha, float beta) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            float c = 0.0f;
            for (int i = 0; i < k; i++) {
                float a = A[mm + i * lda];
                float b = B[nn + i * ldb];
                c += a * b;
            }
            C[mm+nn*ldc] = C[mm+nn*ldc] * beta + alpha * c;
        }
    }
}
)";

// Parboil spmv: row-compressed matrix-vector product (the paper uses
// a custom libSPMV for its padded format; the access structure is the
// same CSR gather).
// Idioms: 1 sparse op.
const char *kSpmvSource = R"(
void spmv_main(int n, int *rowstr, int *colidx, double *val,
               double *x, double *y) {
    for (int it = 0; it < 4; it++)
        for (int j = 0; j < n; j++) {
            double d = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                d = d + val[k] * x[colidx[k]];
            y[j] = d;
        }
}
)";

// Parboil stencil: two 7-point Jacobi sweeps with literal bounds.
// Idioms: 2 stencils.
const char *kStencilSource = R"(
void stencil_main(double *a0, double *a1) {
    for (int k = 1; k < 11; k++)
      for (int j = 1; j < 11; j++)
        for (int i = 1; i < 11; i++)
          a1[i + 12*(j + 12*k)] =
              0.4 * (a0[(i+1) + 12*(j + 12*k)]
                   + a0[(i-1) + 12*(j + 12*k)]
                   + a0[i + 12*((j+1) + 12*k)]
                   + a0[i + 12*((j-1) + 12*k)]
                   + a0[i + 12*(j + 12*(k+1))]
                   + a0[i + 12*(j + 12*(k-1))])
            - 1.4 * a0[i + 12*(j + 12*k)];
    for (int k = 1; k < 11; k++)
      for (int j = 1; j < 11; j++)
        for (int i = 1; i < 11; i++)
          a0[i + 12*(j + 12*k)] =
              0.4 * (a1[(i+1) + 12*(j + 12*k)]
                   + a1[(i-1) + 12*(j + 12*k)]
                   + a1[i + 12*((j+1) + 12*k)]
                   + a1[i + 12*((j-1) + 12*k)]
                   + a1[i + 12*(j + 12*(k+1))]
                   + a1[i + 12*(j + 12*(k-1))])
            - 1.4 * a1[i + 12*(j + 12*k)];
}
)";

// Parboil tpacf: angular-correlation histogram plus two moment sums.
// Idioms: 1 histogram + 2 scalar reductions.
const char *kTpacfSource = R"(
void tpacf_main(double *dd, int *hist, double *sums, int n) {
    for (int i = 0; i < n; i++) {
        double d = dd[i];
        int bin = (int)(d * d * 8.0);
        hist[bin] += 1;
    }
    double m1 = 0.0;
    for (int i = 0; i < n; i++)
        m1 += fabs(dd[i]);
    double m2 = 0.0;
    for (int i = 0; i < n; i++)
        m2 += dd[i] > 0.5 ? dd[i] : 0.0;
    sums[0] = m1; sums[1] = m2;
}
)";

std::vector<BenchmarkProgram>
buildSuite()
{
    std::vector<BenchmarkProgram> all;

    // ------------------------------------------------------------ BT
    {
        BenchmarkProgram b;
        b.name = "BT";
        b.suite = "NAS";
        b.source = kBtSource;
        b.entry = "bt_main";
        b.expected = {5, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 1200;
            Instance inst;
            uint64_t lhs = allocDoubles(mem, n, waveA);
            uint64_t rhs = allocDoubles(mem, n, waveB);
            uint64_t u = allocDoubles(mem, n, waveA);
            uint64_t norms = allocDoubles(mem, 5, zeroD);
            inst.args = {I(lhs), I(rhs), I(u), I(norms), I(n)};
            inst.watchDoubles = {{lhs, n}, {norms, 5}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 40e6, 320e6,
                              80e6, 200, false, 0.15, 1.0, {});
        b.refAlgoFactor = 3.0;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ CG
    {
        BenchmarkProgram b;
        b.name = "CG";
        b.suite = "NAS";
        b.source = kCgSource;
        b.entry = "cg_main";
        b.expected = {3, 0, 0, 0, 2};
        b.setup = [](Memory &mem) {
            const int n = 600;
            Instance inst;
            // Banded CSR matrix, about 5 entries per row.
            std::vector<int32_t> rowstr_v{0};
            std::vector<int32_t> colidx_v;
            std::vector<double> a_v;
            for (int i = 0; i < n; ++i) {
                for (int d = -2; d <= 2; ++d) {
                    int j = i + d;
                    if (j < 0 || j >= n || (d != 0 && (i + d) % 3 == 0))
                        continue;
                    colidx_v.push_back(j);
                    a_v.push_back(1.0 + 0.01 * ((i * 7 + j) % 50));
                }
                rowstr_v.push_back(
                    static_cast<int32_t>(colidx_v.size()));
            }
            uint64_t rowstr = mem.allocate(rowstr_v.size() * 4);
            for (size_t i = 0; i < rowstr_v.size(); ++i)
                mem.store<int32_t>(rowstr + 4 * i, rowstr_v[i]);
            uint64_t colidx = mem.allocate(colidx_v.size() * 4);
            for (size_t i = 0; i < colidx_v.size(); ++i)
                mem.store<int32_t>(colidx + 4 * i, colidx_v[i]);
            uint64_t a = mem.allocate(a_v.size() * 8);
            for (size_t i = 0; i < a_v.size(); ++i)
                mem.store<double>(a + 8 * i, a_v[i]);
            uint64_t x = allocDoubles(mem, n, waveA);
            uint64_t z = allocDoubles(mem, n, zeroD);
            uint64_t p = allocDoubles(mem, n, waveB);
            uint64_t q = allocDoubles(mem, n, zeroD);
            uint64_t r = allocDoubles(mem, n, waveA);
            inst.args = {I(n), I(rowstr), I(colidx), I(a), I(x),
                         I(z), I(p), I(q), I(r)};
            inst.watchDoubles = {{z, n}, {q, n}, {x, n}, {r, n}};
            return inst;
        };
        // Class-B-like: nnz ~2e6, ~1.9s sequential, iterative solver
        // with resident data (lazy copy applicable).
        // Class-B-like CG: bandwidth-bound CSR gather, resident on
        // the device across ~400 solver iterations.
        b.profile = profileOf(
            IdiomClass::SparseMatrixOp, 5e6, 25e6, 0.4e9, 400, true,
            0.98, 1.0,
            {runtime::Api::MKL, runtime::Api::ClSPARSE,
             runtime::Api::CuSPARSE});
        b.refAlgoFactor = 1.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ DC
    {
        BenchmarkProgram b;
        b.name = "DC";
        b.suite = "NAS";
        b.source = kDcSource;
        b.entry = "dc_main";
        b.expected = {2, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 1500;
            Instance inst;
            uint64_t tuples = allocDoubles(mem, n, waveA);
            uint64_t agg = allocDoubles(mem, 2, zeroD);
            inst.args = {I(tuples), I(agg), I(n)};
            inst.watchDoubles = {{tuples, n}, {agg, 2}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 8e6, 64e6,
                              32e6, 100, false, 0.13, 1.0, {});
        b.refAlgoFactor = 2.0;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ EP
    {
        BenchmarkProgram b;
        b.name = "EP";
        b.suite = "NAS";
        b.source = kEpSource;
        b.entry = "ep_main";
        b.expected = {1, 1, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 1500;
            Instance inst;
            uint64_t xs = allocDoubles(mem, n, [](size_t i) {
                return i == 0 ? 1234.5 : 0.0;
            });
            uint64_t q = allocDoubles(mem, 16, zeroD);
            uint64_t sums = allocDoubles(mem, 1, zeroD);
            inst.args = {I(xs), I(q), I(sums), I(n)};
            inst.watchDoubles = {{q, 16}, {sums, 1}};
            return inst;
        };
        // Compute heavy; only half the runtime is the tally
        // (Figure 17), the deviate recurrence stays serial.
        b.profile = profileOf(IdiomClass::HistogramReduction, 48e9,
                              8e9, 17e6, 1, false, 0.5, 0.284,
                              {runtime::Api::Lift});
        b.refAlgoFactor = 8.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ FT
    {
        BenchmarkProgram b;
        b.name = "FT";
        b.suite = "NAS";
        b.source = kFtSource;
        b.entry = "ft_main";
        b.expected = {3, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 1400;
            Instance inst;
            uint64_t re = allocDoubles(mem, n, waveA);
            uint64_t im = allocDoubles(mem, n, waveB);
            uint64_t sums = allocDoubles(mem, 3, zeroD);
            inst.args = {I(re), I(im), I(sums), I(n)};
            inst.watchDoubles = {{re, n}, {im, n}, {sums, 3}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 30e6, 240e6,
                              120e6, 60, false, 0.23, 1.0, {});
        b.refAlgoFactor = 2.5;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ IS
    {
        BenchmarkProgram b;
        b.name = "IS";
        b.suite = "NAS";
        b.source = kIsSource;
        b.entry = "is_main";
        b.expected = {1, 1, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 4000;
            const int nbuckets = 64;
            Instance inst;
            uint64_t keys = allocInts(mem, n, [](size_t i) {
                return static_cast<int32_t>((i * 37 + i / 5) % 64);
            });
            uint64_t count = allocInts(mem, nbuckets, zeroI);
            uint64_t sums = allocInts(mem, 1, zeroI);
            inst.args = {I(keys), I(count), I(sums), I(n),
                         I(nbuckets)};
            inst.watchInts = {{count, nbuckets}, {sums, 1}};
            return inst;
        };
        // Memory bound bucket counting.
        b.profile = profileOf(IdiomClass::HistogramReduction, 0.3e9,
                              3.6e9, 0.6e9, 1, false, 0.95, 0.8,
                              {runtime::Api::Halide,
                               runtime::Api::Lift});
        b.refAlgoFactor = 10.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ LU
    {
        BenchmarkProgram b;
        b.name = "LU";
        b.suite = "NAS";
        b.source = kLuSource;
        b.entry = "lu_main";
        b.expected = {9, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 1100;
            Instance inst;
            uint64_t rsd = allocDoubles(mem, n, waveA);
            uint64_t u = allocDoubles(mem, n, waveB);
            uint64_t flux = allocDoubles(mem, n, waveA);
            uint64_t norms = allocDoubles(mem, 9, zeroD);
            inst.args = {I(rsd), I(u), I(flux), I(norms), I(n)};
            inst.watchDoubles = {{rsd, n}, {flux, n}, {norms, 9}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 60e6, 500e6,
                              160e6, 250, false, 0.22, 1.0, {});
        b.refAlgoFactor = 3.5;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ MG
    {
        BenchmarkProgram b;
        b.name = "MG";
        b.suite = "NAS";
        b.source = kMgSource;
        b.entry = "mg_main";
        b.expected = {1, 0, 1, 0, 0};
        b.setup = [](Memory &mem) {
            const int n1 = 12, n2 = 12, n3 = 12;
            const int total = n1 * n2 * n3;
            Instance inst;
            uint64_t u = allocDoubles(mem, total, waveA);
            uint64_t v = allocDoubles(mem, total, waveB);
            uint64_t r = allocDoubles(mem, total, zeroD);
            uint64_t sums = allocDoubles(mem, 1, zeroD);
            inst.args = {I(u), I(v), I(r), I(sums), I(n1), I(n2),
                         I(n3)};
            inst.watchDoubles = {{r, static_cast<size_t>(total)},
                                 {sums, 1}};
            return inst;
        };
        // Stencil-heavy V-cycles; mid-size grids favour the iGPU
        // (paper: per-cycle transfers dominate the external GPU).
        b.profile = profileOf(IdiomClass::Stencil, 0.15e9, 0.5e9,
                              0.56e9, 40, false, 0.95, 0.75,
                              {runtime::Api::Lift});
        b.refAlgoFactor = 6.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ SP
    {
        BenchmarkProgram b;
        b.name = "SP";
        b.suite = "NAS";
        b.source = kSpSource;
        b.entry = "sp_main";
        b.expected = {5, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 1200;
            Instance inst;
            uint64_t lhs = allocDoubles(mem, n, waveB);
            uint64_t rhs = allocDoubles(mem, n, waveA);
            uint64_t speed = allocDoubles(mem, n, waveB);
            uint64_t norms = allocDoubles(mem, 5, zeroD);
            inst.args = {I(lhs), I(rhs), I(speed), I(norms), I(n)};
            inst.watchDoubles = {{lhs, n}, {norms, 5}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 50e6, 400e6,
                              140e6, 220, false, 0.19, 1.0, {});
        b.refAlgoFactor = 3.0;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------------ UA
    {
        BenchmarkProgram b;
        b.name = "UA";
        b.suite = "NAS";
        b.source = kUaSource;
        b.entry = "ua_main";
        b.expected = {6, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 1200;
            Instance inst;
            uint64_t mass = allocDoubles(mem, n, waveA);
            uint64_t res = allocDoubles(mem, n, waveB);
            uint64_t tmort = allocDoubles(mem, n, waveA);
            uint64_t norms = allocDoubles(mem, 6, zeroD);
            inst.args = {I(mass), I(res), I(tmort), I(norms), I(n)};
            inst.watchDoubles = {{tmort, n}, {norms, 6}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 70e6, 560e6,
                              180e6, 300, false, 0.25, 1.0, {});
        b.refAlgoFactor = 3.0;
        all.push_back(std::move(b));
    }

    // ----------------------------------------------------------- bfs
    {
        BenchmarkProgram b;
        b.name = "bfs";
        b.suite = "Parboil";
        b.source = kBfsSource;
        b.entry = "bfs_main";
        b.expected = {1, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 2000;
            Instance inst;
            uint64_t edges = allocInts(mem, n, [](size_t i) {
                return static_cast<int32_t>((i * 131 + 7) % 2000);
            });
            uint64_t visited = allocInts(mem, n, zeroI);
            uint64_t frontier = allocInts(mem, n, zeroI);
            uint64_t sums = allocInts(mem, 1, zeroI);
            inst.args = {I(edges), I(visited), I(frontier), I(sums),
                         I(n)};
            inst.watchInts = {{visited, n}, {sums, 1}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 4e6, 60e6,
                              24e6, 40, false, 0.14, 1.0, {});
        b.refAlgoFactor = 2.0;
        all.push_back(std::move(b));
    }

    // --------------------------------------------------------- cutcp
    {
        BenchmarkProgram b;
        b.name = "cutcp";
        b.suite = "Parboil";
        b.source = kCutcpSource;
        b.entry = "cutcp_main";
        b.expected = {1, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int natoms = 150, gdim = 4, nscratch = 6000;
            Instance inst;
            uint64_t atoms = allocDoubles(mem, natoms, waveA);
            uint64_t grid =
                allocDoubles(mem, gdim * gdim, zeroD);
            uint64_t scratch = allocDoubles(mem, nscratch, waveB);
            inst.args = {I(atoms), I(grid), I(scratch), I(natoms),
                         I(gdim), I(nscratch)};
            inst.watchDoubles = {
                {grid, static_cast<size_t>(gdim * gdim)},
                {scratch, nscratch}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 20e6, 30e6,
                              15e6, 30, false, 0.06, 1.0, {});
        b.refAlgoFactor = 4.0;
        all.push_back(std::move(b));
    }

    // --------------------------------------------------------- histo
    {
        BenchmarkProgram b;
        b.name = "histo";
        b.suite = "Parboil";
        b.source = kHistoSource;
        b.entry = "histo_main";
        b.expected = {0, 2, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 4000, nbins = 96;
            Instance inst;
            uint64_t img = allocInts(mem, n, [](size_t i) {
                return static_cast<int32_t>((i * 53 + i / 7) % 96);
            });
            uint64_t bins = allocInts(mem, nbins, zeroI);
            uint64_t fin = allocInts(mem, 8, zeroI);
            inst.args = {I(img), I(bins), I(fin), I(n), I(nbins)};
            inst.watchInts = {{bins, nbins}, {fin, 8}};
            return inst;
        };
        // Small working set: the integrated GPU wins (Table 3).
        b.profile = profileOf(IdiomClass::HistogramReduction, 0.05e9,
                              0.19e9, 0.24e9, 1, false, 0.9, 1.0,
                              {runtime::Api::Lift});
        b.refAlgoFactor = 1.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ----------------------------------------------------------- lbm
    {
        BenchmarkProgram b;
        b.name = "lbm";
        b.suite = "Parboil";
        b.source = kLbmSource;
        b.entry = "lbm_main";
        b.expected = {0, 0, 3, 0, 0};
        b.setup = [](Memory &mem) {
            const int total = 12 * 12 * 12;
            Instance inst;
            uint64_t f0 = allocDoubles(mem, total, waveA);
            uint64_t f1 = allocDoubles(mem, total, zeroD);
            uint64_t f2 = allocDoubles(mem, total, zeroD);
            inst.args = {I(f0), I(f1), I(f2)};
            inst.watchDoubles = {{f0, total}, {f1, total},
                                 {f2, total}};
            return inst;
        };
        // Iterative lattice updates: lazy copying essential.
        b.profile = profileOf(IdiomClass::Stencil, 0.12e9, 0.433e9,
                              0.56e9, 120, true, 0.98, 1.0,
                              {runtime::Api::Lift});
        b.refAlgoFactor = 1.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ---------------------------------------------------------- mri-g
    {
        BenchmarkProgram b;
        b.name = "mri-g";
        b.suite = "Parboil";
        b.source = kMriGSource;
        b.entry = "mrig_main";
        b.expected = {2, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 2500;
            Instance inst;
            uint64_t samples = allocDoubles(mem, n, waveA);
            uint64_t dens = allocDoubles(mem, n, waveB);
            uint64_t sums = allocDoubles(mem, 2, zeroD);
            inst.args = {I(samples), I(dens), I(sums), I(n)};
            inst.watchDoubles = {{dens, n}, {sums, 2}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 15e6, 120e6,
                              60e6, 50, false, 0.11, 1.0, {});
        b.refAlgoFactor = 2.0;
        all.push_back(std::move(b));
    }

    // ---------------------------------------------------------- mri-q
    {
        BenchmarkProgram b;
        b.name = "mri-q";
        b.suite = "Parboil";
        b.source = kMriQSource;
        b.entry = "mriq_main";
        b.expected = {2, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int nvox = 40, nsamp = 60;
            Instance inst;
            uint64_t phir = allocDoubles(mem, nsamp, waveA);
            uint64_t phii = allocDoubles(mem, nsamp, waveB);
            uint64_t kx = allocDoubles(mem, nsamp, waveA);
            uint64_t qr = allocDoubles(mem, nvox, zeroD);
            uint64_t qi = allocDoubles(mem, nvox, zeroD);
            inst.args = {I(phir), I(phii), I(kx), I(qr), I(qi),
                         I(nvox), I(nsamp)};
            inst.watchDoubles = {{qr, nvox}, {qi, nvox},
                                 {kx, nsamp}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 30e6, 50e6,
                              20e6, 20, false, 0.3, 1.0, {});
        b.refAlgoFactor = 3.0;
        all.push_back(std::move(b));
    }

    // ----------------------------------------------------------- sad
    {
        BenchmarkProgram b;
        b.name = "sad";
        b.suite = "Parboil";
        b.source = kSadSource;
        b.entry = "sad_main";
        b.expected = {1, 0, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 2500;
            Instance inst;
            uint64_t cur = allocInts(mem, n, [](size_t i) {
                return static_cast<int32_t>((i * 31) % 255);
            });
            uint64_t ref = allocInts(mem, n, [](size_t i) {
                return static_cast<int32_t>((i * 17 + 9) % 255);
            });
            uint64_t best = allocInts(mem, 1, zeroI);
            inst.args = {I(cur), I(ref), I(best), I(n)};
            inst.watchInts = {{ref, n}, {best, 1}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::ScalarReduction, 10e6, 80e6,
                              30e6, 40, false, 0.17, 1.0, {});
        b.refAlgoFactor = 2.0;
        all.push_back(std::move(b));
    }

    // --------------------------------------------------------- sgemm
    {
        BenchmarkProgram b;
        b.name = "sgemm";
        b.suite = "Parboil";
        b.source = kSgemmSource;
        b.entry = "sgemm_main";
        b.expected = {0, 0, 0, 1, 0};
        b.setup = [](Memory &mem) {
            const int m = 20, n = 18, k = 22;
            Instance inst;
            uint64_t A = mem.allocate(m * k * 4);
            for (int i = 0; i < m * k; ++i)
                mem.store<float>(A + 4 * i, 0.01f * (i % 97));
            uint64_t B = mem.allocate(n * k * 4);
            for (int i = 0; i < n * k; ++i)
                mem.store<float>(B + 4 * i, 0.02f * (i % 83));
            uint64_t C = mem.allocate(m * n * 4);
            for (int i = 0; i < m * n; ++i)
                mem.store<float>(C + 4 * i, 1.0f);
            inst.args = {I(A), I(m), I(B), I(n), I(C), I(m),
                         I(m), I(n), I(k),
                         RuntimeValue::makeFP(1.5),
                         RuntimeValue::makeFP(0.25)};
            // C compared as raw floats through the int watch (4-byte
            // patterns are bit-exact across runs).
            inst.watchInts = {
                {C, static_cast<size_t>(m * n)}};
            return inst;
        };
        // O(n^3) compute; cuBLAS reaches >275x (Table 3).
        b.profile = profileOf(IdiomClass::MatrixOp, 3.96e9, 100e6,
                              50e6, 1, false, 0.998, 1.0,
                              {runtime::Api::MKL, runtime::Api::ClBLAS,
                               runtime::Api::CLBlast,
                               runtime::Api::Lift,
                               runtime::Api::CuBLAS});
        b.refAlgoFactor = 1.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ---------------------------------------------------------- spmv
    {
        BenchmarkProgram b;
        b.name = "spmv";
        b.suite = "Parboil";
        b.source = kSpmvSource;
        b.entry = "spmv_main";
        b.expected = {0, 0, 0, 0, 1};
        b.setup = [](Memory &mem) {
            const int n = 500;
            Instance inst;
            std::vector<int32_t> rowstr_v{0};
            std::vector<int32_t> colidx_v;
            std::vector<double> val_v;
            for (int i = 0; i < n; ++i) {
                for (int d = -3; d <= 3; ++d) {
                    int j = i + d;
                    if (j < 0 || j >= n || (d != 0 && (i * 3 + d) % 4 == 0))
                        continue;
                    colidx_v.push_back(j);
                    val_v.push_back(0.5 + 0.01 * ((i + j) % 70));
                }
                rowstr_v.push_back(
                    static_cast<int32_t>(colidx_v.size()));
            }
            uint64_t rowstr = mem.allocate(rowstr_v.size() * 4);
            for (size_t i = 0; i < rowstr_v.size(); ++i)
                mem.store<int32_t>(rowstr + 4 * i, rowstr_v[i]);
            uint64_t colidx = mem.allocate(colidx_v.size() * 4);
            for (size_t i = 0; i < colidx_v.size(); ++i)
                mem.store<int32_t>(colidx + 4 * i, colidx_v[i]);
            uint64_t val = mem.allocate(val_v.size() * 8);
            for (size_t i = 0; i < val_v.size(); ++i)
                mem.store<double>(val + 8 * i, val_v[i]);
            uint64_t x = allocDoubles(mem, n, waveA);
            uint64_t y = allocDoubles(mem, n, zeroD);
            inst.args = {I(n), I(rowstr), I(colidx), I(val), I(x),
                         I(y)};
            inst.watchDoubles = {{y, n}};
            return inst;
        };
        // Unusual padded format: the custom libSPMV serves all
        // three platforms (section 8.3).
        b.profile = profileOf(IdiomClass::SparseMatrixOp, 9e6, 44e6,
                              45e6, 50, true, 0.95, 1.0,
                              {runtime::Api::LibSPMV});
        b.refAlgoFactor = 1.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // ------------------------------------------------------- stencil
    {
        BenchmarkProgram b;
        b.name = "stencil";
        b.suite = "Parboil";
        b.source = kStencilSource;
        b.entry = "stencil_main";
        b.expected = {0, 0, 2, 0, 0};
        b.setup = [](Memory &mem) {
            const int total = 12 * 12 * 12;
            Instance inst;
            uint64_t a0 = allocDoubles(mem, total, waveA);
            uint64_t a1 = allocDoubles(mem, total, zeroD);
            inst.args = {I(a0), I(a1)};
            inst.watchDoubles = {{a0, total}, {a1, total}};
            return inst;
        };
        b.profile = profileOf(IdiomClass::Stencil, 0.11e9, 0.42e9,
                              0.5e9, 100, true, 0.97, 1.0,
                              {runtime::Api::Halide,
                               runtime::Api::Lift});
        b.refAlgoFactor = 1.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    // --------------------------------------------------------- tpacf
    {
        BenchmarkProgram b;
        b.name = "tpacf";
        b.suite = "Parboil";
        b.source = kTpacfSource;
        b.entry = "tpacf_main";
        b.expected = {2, 1, 0, 0, 0};
        b.setup = [](Memory &mem) {
            const int n = 2500;
            Instance inst;
            uint64_t dd = allocDoubles(mem, n, [](size_t i) {
                return 0.999 * ((i * 29 + 11) % 997) / 997.0;
            });
            uint64_t hist = allocInts(mem, 16, zeroI);
            uint64_t sums = allocDoubles(mem, 2, zeroD);
            inst.args = {I(dd), I(hist), I(sums), I(n)};
            inst.watchInts = {{hist, 16}};
            inst.watchDoubles = {{sums, 2}};
            return inst;
        };
        // Hundreds of thousands of tiny binning kernels with fresh
        // data each time: dispatch and DMA latency dominate the GPUs
        // and the CPU wins (Table 3).
        b.profile = profileOf(IdiomClass::HistogramReduction, 175e3,
                              22.5e3, 23.75e3, 400000, false, 0.97,
                              0.3, {runtime::Api::Lift});
        b.refAlgoFactor = 12.0;
        b.exploited = true;
        all.push_back(std::move(b));
    }

    return all;
}

} // namespace

const std::vector<BenchmarkProgram> &
nasParboilSuite()
{
    static const std::vector<BenchmarkProgram> suite = buildSuite();
    return suite;
}

const BenchmarkProgram &
benchmarkByName(const std::string &name)
{
    for (const auto &b : nasParboilSuite()) {
        if (b.name == name)
            return b;
    }
    throw FatalError("unknown benchmark '" + name + "'");
}

} // namespace repro::benchmarks
