/**
 * @file
 * The evaluation corpus: MiniC reconstructions of the 21 sequential
 * C/C++ programs of the paper (NAS NPB via SNU: BT CG DC EP FT IS LU
 * MG SP UA; Parboil: bfs cutcp histo lbm mri-g mri-q sad sgemm spmv
 * stencil tpacf).
 *
 * Each kernel preserves the loop and memory-access structure that
 * drives idiom detection in the original benchmark (CSR gather in CG,
 * bucket counting in IS/histo, flattened 3D Jacobi in stencil/MG/lbm,
 * strided GEMM in sgemm, ...). The dominant non-idiomatic work of the
 * low-coverage benchmarks is represented by memory-carried
 * recurrences, which no idiom (and no baseline) may claim.
 */
#ifndef BENCHMARKS_SUITE_H
#define BENCHMARKS_SUITE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "runtime/device_model.h"

namespace repro::benchmarks {

/** A prepared program instance: entry arguments plus output ranges. */
struct Instance
{
    std::vector<interp::RuntimeValue> args;
    /** (address, element count) of double arrays to verify. */
    std::vector<std::pair<uint64_t, size_t>> watchDoubles;
    /** (address, element count) of i32 arrays to verify. */
    std::vector<std::pair<uint64_t, size_t>> watchInts;
};

using SetupFn = std::function<Instance(interp::Memory &)>;

/** Expected idiom counts (the Table 1 / Figure 16 ground truth). */
struct ExpectedIdioms
{
    int scalarReductions = 0;
    int histograms = 0;
    int stencils = 0;
    int matrixOps = 0;
    int sparseOps = 0;

    int
    total() const
    {
        return scalarReductions + histograms + stencils + matrixOps +
               sparseOps;
    }
};

/** One benchmark program. */
struct BenchmarkProgram
{
    std::string name;
    std::string suite; ///< "NAS" or "Parboil"
    std::string source;
    std::string entry;
    SetupFn setup;
    ExpectedIdioms expected;
    /** Paper-scale workload descriptor for the device model. */
    runtime::WorkProfile profile;
    /** Reference implementations' algorithmic advantage (Fig. 19). */
    double refAlgoFactor = 1.0;
    /** Among the 10 benchmarks with significant idiom coverage. */
    bool exploited = false;
};

/** All 21 programs, NAS first. */
const std::vector<BenchmarkProgram> &nasParboilSuite();

/** Lookup by name; throws FatalError when absent. */
const BenchmarkProgram &benchmarkByName(const std::string &name);

} // namespace repro::benchmarks

#endif // BENCHMARKS_SUITE_H
