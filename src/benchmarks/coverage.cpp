#include "benchmarks/coverage.h"

#include <map>
#include <set>

#include "analysis/function_analyses.h"

namespace repro::benchmarks {

using analysis::Loop;

double
runtimeCoverage(const std::vector<idioms::IdiomMatch> &matches,
                const interp::Profile &profile)
{
    if (profile.totalSteps == 0)
        return 0.0;

    // Per-function loop info caches.
    std::map<ir::Function *, std::unique_ptr<analysis::DomTree>> doms;
    std::map<ir::Function *, std::unique_ptr<analysis::LoopInfo>> loops;

    std::set<const ir::Instruction *> claimed;
    for (const auto &match : matches) {
        ir::Function *func = match.function;
        if (!loops.count(func)) {
            doms[func] =
                std::make_unique<analysis::DomTree>(func, false);
            loops[func] = std::make_unique<analysis::LoopInfo>(
                func, *doms[func]);
        }
        for (const auto &var : idioms::idiomClaimVars(match.idiom)) {
            const ir::Value *cmp = match.solution.lookup(var);
            if (!cmp || !cmp->isInstruction())
                continue;
            const auto *inst =
                static_cast<const ir::Instruction *>(cmp);
            for (const auto &loop : loops[func]->loops()) {
                if (loop->header != inst->parent())
                    continue;
                for (ir::BasicBlock *bb : loop->blocks) {
                    for (const auto &i : bb->insts())
                        claimed.insert(i.get());
                }
            }
        }
    }

    uint64_t in_idioms = profile.countIn(claimed);
    return static_cast<double>(in_idioms) /
           static_cast<double>(profile.totalSteps);
}

} // namespace repro::benchmarks
