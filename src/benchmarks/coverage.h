/**
 * @file
 * Runtime coverage of detected idioms (the Figure 17 experiment):
 * fraction of dynamic instructions spent inside matched idiom loops.
 */
#ifndef BENCHMARKS_COVERAGE_H
#define BENCHMARKS_COVERAGE_H

#include <vector>

#include "idioms/library.h"
#include "interp/interpreter.h"

namespace repro::benchmarks {

/**
 * Dynamic instructions attributed to the loops claimed by @p matches,
 * as a fraction of @p profile's total steps (0..1).
 */
double runtimeCoverage(const std::vector<idioms::IdiomMatch> &matches,
                       const interp::Profile &profile);

} // namespace repro::benchmarks

#endif // BENCHMARKS_COVERAGE_H
