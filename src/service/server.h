/**
 * @file
 * Transports for the matching service: a stdin/stdout (or any
 * iostream) line-protocol REPL, and a socket listener serving the
 * same protocol over unix-domain or loopback TCP connections.
 *
 * Both fronts share one command loop (serve connections are
 * stateless beyond their MatchService reference), so a scripted REPL
 * session in a test exercises exactly the code path a daemon client
 * hits. The socket server runs one thread per connection;
 * MatchService is internally synchronized, so concurrent clients
 * serialize on its mutex and share the one match cache — which is
 * the point: client B's cold submit hits entries client A populated.
 */
#ifndef SERVICE_SERVER_H
#define SERVICE_SERVER_H

#include <atomic>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace repro::service {

/**
 * Serve the line protocol over @p in / @p out until QUIT or EOF.
 * Returns the number of requests handled.
 */
size_t runRepl(MatchService &service, std::istream &in,
               std::ostream &out);

/** Listener configuration: set exactly one of the two endpoints. */
struct ServerOptions
{
    /** Unix-domain socket path ("" = disabled). Unlinked on stop. */
    std::string unixPath;
    /** Loopback TCP port (-1 = disabled, 0 = ephemeral). */
    int tcpPort = -1;

    // Overload protection: past either bound the daemon sheds load
    // with `BUSY retry_after_ms=<n>` instead of queueing unboundedly
    // (connections each cost a thread; SUBMITs each cost a solve).

    /** Concurrent connections admitted; excess get BUSY + close. */
    size_t maxConnections = 64;
    /**
     * SUBMITs allowed in flight at once. The gate is taken after the
     * payload is read (the stream stays in sync), so a shed SUBMIT
     * costs I/O but no compile/solve, and the connection survives.
     */
    size_t maxInFlight = 8;
    /** Client backoff hint carried by every BUSY response. */
    uint64_t busyRetryMs = 100;
};

/** The daemon's socket front. */
class SocketServer
{
  public:
    SocketServer(MatchService &service, ServerOptions opts);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind, listen and spawn the accept thread. Throws FatalError on
     * any socket failure (already-bound path, privileged port, ...).
     */
    void start();

    /** Stop accepting, shut down live connections, join threads. */
    void stop();

    bool running() const { return running_; }

    /** The bound TCP port (after start(); ephemeral ports resolved). */
    int boundTcpPort() const { return boundPort_; }

  private:
    void acceptLoop();
    void reapFinishedConnections();

    MatchService &service_;
    ServerOptions opts_;
    /** Atomic: the accept thread reads it while stop() retires it. */
    std::atomic<int> listenFd_{-1};
    int boundPort_ = -1;
    bool running_ = false;
    std::thread acceptThread_;

    /** Live (admitted, not yet finished) connections. */
    std::atomic<size_t> liveConnections_{0};
    /** SUBMITs currently compiling/solving (admission gate). */
    std::atomic<size_t> inFlight_{0};

    struct Connection;
    std::vector<std::unique_ptr<Connection>> connections_;
    std::mutex connMutex_;
};

} // namespace repro::service

#endif // SERVICE_SERVER_H
