#include "service/service.h"

#include <chrono>
#include <map>

#include "frontend/compiler.h"
#include "ir/verifier.h"
#include "transform/rewrite.h"

namespace repro::service {

namespace {

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

driver::DriverOptions
sessionDriverOptions(const ServiceOptions &opts,
                     std::shared_ptr<driver::MatchCache> cache)
{
    driver::DriverOptions d;
    d.limits = opts.limits;
    d.cache = std::move(cache);
    d.backendPolicy = opts.backendPolicy;
    return d;
}

} // namespace

MatchService::MatchService(ServiceOptions opts)
    : opts_(opts),
      cache_(std::make_shared<driver::MatchCache>(opts.cacheCapacity)),
      driver_(sessionDriverOptions(opts, cache_))
{}

SubmitOutcome
MatchService::submit(const std::string &moduleName,
                     const std::string &source,
                     uint64_t deadlineMillis)
{
    std::lock_guard<std::mutex> lock(mutex_);

    SubmitOutcome outcome;
    outcome.module = moduleName;

    // Compile into a fresh module first: a failed submission must
    // leave the previous session fully intact.
    auto module = std::make_unique<ir::Module>();
    module->setName(moduleName);
    auto t0 = std::chrono::steady_clock::now();
    DiagEngine diags;
    if (!frontend::compileMiniC(source, *module, diags)) {
        outcome.error = diags.all().empty()
                            ? std::string("compilation failed")
                            : diags.all().front().str();
        return outcome;
    }
    // Defense in depth, always on regardless of VerifyMode: nothing
    // malformed may reach the session store or the shared match cache
    // (cached entries outlive the module that deposited them). The
    // rejection is structured — the wire error carries the verifier's
    // rule id and location, not a blurred "bad module".
    ir::VerifierReport vr = ir::verifyModuleDetailed(*module);
    if (vr.errorCount() != 0) {
        outcome.error = "invalid-ir " + vr.firstError().str();
        return outcome;
    }
    outcome.compileMillis = millisSince(t0);

    // The driver's analysis cache points into the previously matched
    // module; this request targets a new one. (The epoch bump also
    // retires analyses deposited in the MatchCache, so recycled
    // addresses can never revive them.)
    driver_.invalidateAll();
    // The deadline clock starts when the solve starts, not when the
    // request was parsed: compile time is not solver effort. mutex_
    // serializes submissions, so setSolverLimits never races.
    uint64_t effectiveDeadline = deadlineMillis != 0
                                     ? deadlineMillis
                                     : opts_.defaultDeadlineMillis;
    driver_.setSolverLimits(solver::SolverLimits::withDeadline(
        opts_.limits, effectiveDeadline));
    t0 = std::chrono::steady_clock::now();
    driver::MatchReport report = driver_.matchModule(*module);
    outcome.matchMillis = millisSince(t0);

    outcome.ok = true;
    outcome.degraded = solver::solveStatusToken(report.status);
    outcome.functions = report.functions.size();
    outcome.matches = report.matchCount();
    outcome.cacheHits = report.cacheHits;
    outcome.cacheMisses = report.cacheMisses;
    // Backend selection for MATCH lines: plan every match (replayed
    // or fresh — the cache stores matches only, so selection always
    // reflects the CURRENT policy) against all legal targets and
    // rank by modeled cost. Planning is pure (no IR mutation, no
    // kernel extraction); a match the translation schemes cannot
    // express simply carries no backend keys.
    std::map<size_t, transform::BackendDecision> decisionByIndex;
    if (opts_.backendPolicy == transform::BackendPolicy::CostModel) {
        transform::BackendConfig config;
        config.policy = transform::BackendPolicy::CostModel;
        for (auto &d : transform::planBackendDecisions(
                 *module, report.allMatches(), config))
            decisionByIndex.emplace(d.matchIndex, std::move(d));
    }

    size_t matchIndex = 0;
    for (const auto &fr : report.functions) {
        FunctionOutcome fo;
        fo.name = fr.function->name();
        fo.contentHash = fr.contentHash;
        fo.matches = fr.matches.size();
        fo.fromCache = fr.fromCache;
        outcome.perFunction.push_back(std::move(fo));
        for (const auto &m : fr.matches) {
            MatchOutcome mo;
            mo.function = fr.function->name();
            mo.idiom = m.idiom;
            mo.cls = m.cls;
            auto it = decisionByIndex.find(matchIndex++);
            if (it != decisionByIndex.end()) {
                mo.hasBackend = true;
                mo.backend = runtime::backendToken(it->second.chosen);
                mo.predictedMs = it->second.chosen.predictedMs;
                for (const auto &alt : it->second.rejected)
                    mo.rejected.emplace_back(
                        runtime::backendToken(alt), alt.predictedMs);
            }
            outcome.matchList.push_back(std::move(mo));
        }
    }

    Session &session = sessions_[moduleName];
    session.source = source;
    // Destroying the replaced module is safe: the driver cache was
    // invalidated above and the new report holds no pointers into it.
    session.module = std::move(module);
    session.outcome = outcome;
    return outcome;
}

bool
MatchService::lastOutcome(const std::string &moduleName,
                          SubmitOutcome *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(moduleName);
    if (it == sessions_.end())
        return false;
    *out = it->second.outcome;
    return true;
}

bool
MatchService::drop(const std::string &moduleName)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(moduleName);
    if (it == sessions_.end())
        return false;
    // The driver's analysis cache may point into the dying module;
    // never let a later submission's recycled addresses alias it.
    driver_.invalidateAll();
    sessions_.erase(it);
    return true;
}

void
MatchService::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    driver_.invalidateAll();
    sessions_.clear();
    cache_->clear();
}

size_t
MatchService::sessionCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

driver::CacheCounters
MatchService::cacheCounters() const
{
    return cache_->counters();
}

size_t
MatchService::cacheSize() const
{
    return cache_->size();
}

size_t
MatchService::cacheCapacity() const
{
    return cache_->capacity();
}

void
MatchService::setCacheCapacity(size_t capacity)
{
    cache_->setCapacity(capacity);
}

uint64_t
MatchService::idiomSetHash() const
{
    return idioms::idiomSetHash();
}

} // namespace repro::service
