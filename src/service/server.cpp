#include "service/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <exception>
#include <istream>
#include <ostream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.h"
#include "support/diagnostics.h"

namespace repro::service {

namespace {

/**
 * Transport seam of the command loop: line- and byte-granular reads
 * plus buffered writes, implemented over iostreams (REPL) and file
 * descriptors (sockets).
 */
class LineIO
{
  public:
    virtual ~LineIO() = default;
    /** One line, without the trailing newline (CR stripped). */
    virtual bool readLine(std::string *line) = 0;
    /** Exactly @p n bytes (the counted SUBMIT payload). */
    virtual bool readBytes(char *buf, size_t n) = 0;
    virtual bool write(const std::string &data) = 0;
};

class StreamIO final : public LineIO
{
  public:
    StreamIO(std::istream &in, std::ostream &out) : in_(in), out_(out)
    {}

    bool
    readLine(std::string *line) override
    {
        if (!std::getline(in_, *line))
            return false;
        if (!line->empty() && line->back() == '\r')
            line->pop_back();
        return true;
    }

    bool
    readBytes(char *buf, size_t n) override
    {
        in_.read(buf, static_cast<std::streamsize>(n));
        return static_cast<size_t>(in_.gcount()) == n;
    }

    bool
    write(const std::string &data) override
    {
        out_ << data;
        out_.flush();
        return static_cast<bool>(out_);
    }

  private:
    std::istream &in_;
    std::ostream &out_;
};

class FdIO final : public LineIO
{
  public:
    explicit FdIO(int fd) : fd_(fd) {}

    bool
    readLine(std::string *line) override
    {
        line->clear();
        for (;;) {
            if (pos_ == buffer_.size() && !fill())
                return !line->empty();
            char c = buffer_[pos_++];
            if (c == '\n') {
                if (!line->empty() && line->back() == '\r')
                    line->pop_back();
                return true;
            }
            // Bound the line buffer: a client streaming gigabytes
            // without a newline must not OOM the daemon. Excess bytes
            // are consumed but dropped; the truncated line then fails
            // request parsing.
            if (line->size() < kMaxPayloadBytes)
                line->push_back(c);
        }
    }

    bool
    readBytes(char *buf, size_t n) override
    {
        size_t got = 0;
        while (got < n) {
            if (pos_ == buffer_.size() && !fill())
                return false;
            size_t take =
                std::min(n - got, buffer_.size() - pos_);
            std::memcpy(buf + got, buffer_.data() + pos_, take);
            pos_ += take;
            got += take;
        }
        return true;
    }

    bool
    write(const std::string &data) override
    {
        size_t sent = 0;
        while (sent < data.size()) {
            // MSG_NOSIGNAL: a client that vanished between our read
            // and this write must yield EPIPE, not a process-fatal
            // SIGPIPE (the daemon additionally ignores SIGPIPE, but
            // a library user of SocketServer may not).
            ssize_t n = ::send(fd_, data.data() + sent,
                               data.size() - sent, MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

  private:
    bool
    fill()
    {
        char chunk[4096];
        ssize_t n;
        do {
            n = ::read(fd_, chunk, sizeof(chunk));
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return false;
        buffer_.assign(chunk, chunk + n);
        pos_ = 0;
        return true;
    }

    int fd_;
    std::string buffer_;
    size_t pos_ = 0;
};

void
writeLines(LineIO &io, const std::vector<std::string> &lines)
{
    std::string block;
    for (const auto &line : lines) {
        block += line;
        block += '\n';
    }
    io.write(block);
}

enum class PayloadStatus
{
    Ok,
    Truncated, ///< stream ended inside the payload
    TooLarge,  ///< payload exceeds kMaxPayloadBytes
};

/**
 * Read the SUBMIT payload: counted bytes, or heredoc lines up to the
 * terminator. Truncated payloads tear the connection down —
 * resynchronizing inside a half-read payload is impossible. Payloads
 * over kMaxPayloadBytes fail: an oversized heredoc is drained to its
 * terminator (bounded memory) so the connection stays usable, while
 * an oversized counted payload is rejected before any allocation and
 * before any of its bytes are read (the caller must then close, since
 * the unread bytes would be misparsed as requests).
 */
PayloadStatus
readPayload(LineIO &io, const Request &request, std::string *source)
{
    if (!request.terminator.empty()) {
        std::string line;
        source->clear();
        bool overflow = false;
        for (;;) {
            if (!io.readLine(&line))
                return PayloadStatus::Truncated;
            if (line == request.terminator) {
                return overflow ? PayloadStatus::TooLarge
                                : PayloadStatus::Ok;
            }
            if (overflow)
                continue;
            if (source->size() + line.size() + 1 > kMaxPayloadBytes) {
                overflow = true;
                continue;
            }
            *source += line;
            *source += '\n';
        }
    }
    if (request.payloadBytes > kMaxPayloadBytes)
        return PayloadStatus::TooLarge;
    source->resize(request.payloadBytes);
    if (request.payloadBytes != 0 &&
        !io.readBytes(&(*source)[0], request.payloadBytes))
        return PayloadStatus::Truncated;
    return PayloadStatus::Ok;
}

/**
 * In-flight SUBMIT gate shared by a server's connections. nullptr
 * (the REPL) admits everything.
 */
struct AdmissionGate
{
    std::atomic<size_t> &inFlight;
    size_t maxInFlight;
    uint64_t busyRetryMs;

    /** Try to take a slot; the caller must release() iff true. */
    bool
    acquire()
    {
        size_t cur = inFlight.load();
        do {
            if (cur >= maxInFlight)
                return false;
        } while (!inFlight.compare_exchange_weak(cur, cur + 1));
        return true;
    }

    void release() { --inFlight; }
};

std::string
busyLine(uint64_t retryMs)
{
    return "BUSY retry_after_ms=" + std::to_string(retryMs) + "\n";
}

/** The shared command loop; returns the number of requests served. */
size_t
serveConnection(MatchService &service, LineIO &io,
                AdmissionGate *gate = nullptr)
{
    size_t requests = 0;
    std::string line;
    while (io.readLine(&line)) {
        // Blank lines are tolerated so a counted SUBMIT payload may
        // end with a courtesy newline.
        if (tokenize(line).empty())
            continue;
        ++requests;
        // One request must never take the connection's siblings down:
        // any exception escaping the dispatch (solver FatalError,
        // bad_alloc, ...) would otherwise propagate through the
        // connection thread into std::terminate. In-sync guarantees
        // are gone at that point, so fail this connection only.
        try {
        Request request = parseRequest(line);
        switch (request.verb) {
          case Request::Verb::Hello: {
            io.write("OK service=repro-match protocol=" +
                     std::to_string(kProtocolVersion) + " idiomset=" +
                     hashToken(idioms::idiomSetHash()) + "\n");
            break;
          }
          case Request::Verb::Submit: {
            std::string source;
            switch (readPayload(io, request, &source)) {
              case PayloadStatus::Truncated:
                io.write("ERR truncated SUBMIT payload\n");
                return requests;
              case PayloadStatus::TooLarge:
                io.write("ERR payload too large (max " +
                         std::to_string(kMaxPayloadBytes) +
                         " bytes)\n");
                // A drained heredoc leaves the stream in sync; an
                // unread counted payload cannot.
                if (request.terminator.empty())
                    return requests;
                break;
              case PayloadStatus::Ok: {
                // The gate is taken only now, with the payload fully
                // consumed: shedding earlier would leave unread
                // payload bytes to be misparsed as request lines.
                if (gate && !gate->acquire()) {
                    io.write(busyLine(gate->busyRetryMs));
                    break;
                }
                SubmitOutcome outcome;
                try {
                    outcome = service.submit(request.module, source,
                                             request.deadlineMillis);
                } catch (...) {
                    if (gate)
                        gate->release();
                    throw;
                }
                if (gate)
                    gate->release();
                writeLines(io, formatSubmitResponse(outcome));
                break;
              }
            }
            break;
          }
          case Request::Verb::Matches: {
            SubmitOutcome outcome;
            if (service.lastOutcome(request.module, &outcome))
                writeLines(io, formatSubmitResponse(outcome));
            else
                io.write("ERR unknown module: " + request.module +
                         "\n");
            break;
          }
          case Request::Verb::Stats:
            io.write(formatStats(service.cacheCounters(),
                                 service.cacheSize(),
                                 service.cacheCapacity(),
                                 service.sessionCount()) +
                     "\n");
            break;
          case Request::Verb::Capacity:
            service.setCacheCapacity(request.capacity);
            io.write("OK capacity=" +
                     std::to_string(service.cacheCapacity()) + "\n");
            break;
          case Request::Verb::Drop:
            io.write(std::string("OK dropped=") +
                     (service.drop(request.module) ? "1" : "0") +
                     "\n");
            break;
          case Request::Verb::Reset:
            service.reset();
            io.write("OK\n");
            break;
          case Request::Verb::Quit:
            io.write("OK bye\n");
            return requests;
          case Request::Verb::Invalid:
            io.write("ERR " + request.error + "\n");
            break;
        }
        } catch (const std::exception &e) {
            io.write(std::string("ERR internal error: ") + e.what() +
                     "\n");
            return requests;
        }
    }
    return requests;
}

} // namespace

size_t
runRepl(MatchService &service, std::istream &in, std::ostream &out)
{
    StreamIO io(in, out);
    return serveConnection(service, io);
}

/** One live socket connection and its handler thread. */
struct SocketServer::Connection
{
    std::atomic<int> fd{-1};
    std::thread thread;
    /**
     * Set by the handler after it closed its fd (under connMutex_):
     * the accept loop may then join the thread and free the slot.
     */
    std::atomic<bool> done{false};
};

SocketServer::SocketServer(MatchService &service, ServerOptions opts)
    : service_(service), opts_(std::move(opts))
{}

SocketServer::~SocketServer()
{
    stop();
}

void
SocketServer::start()
{
    if (running_)
        throw FatalError("SocketServer::start: already running");
    const bool unixMode = !opts_.unixPath.empty();
    if (unixMode == (opts_.tcpPort >= 0)) {
        throw FatalError("SocketServer: configure exactly one of "
                         "unixPath / tcpPort");
    }

    if (unixMode) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.unixPath.size() >= sizeof(addr.sun_path))
            throw FatalError("SocketServer: unix path too long");
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            throw FatalError("SocketServer: socket() failed");
        ::unlink(opts_.unixPath.c_str());
        std::strncpy(addr.sun_path, opts_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            ::close(listenFd_);
            listenFd_ = -1;
            throw FatalError("SocketServer: bind(" + opts_.unixPath +
                             ") failed");
        }
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            throw FatalError("SocketServer: socket() failed");
        int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<uint16_t>(opts_.tcpPort));
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            ::close(listenFd_);
            listenFd_ = -1;
            throw FatalError("SocketServer: bind(port " +
                             std::to_string(opts_.tcpPort) +
                             ") failed");
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort_ = ntohs(bound.sin_port);
    }

    if (::listen(listenFd_, 16) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw FatalError("SocketServer: listen() failed");
    }
    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
SocketServer::acceptLoop()
{
    for (;;) {
        int lfd = listenFd_.load();
        if (lfd < 0)
            return; // retired by stop()
        int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0)
            return; // listen fd closed by stop()

        // Retire finished handlers first: without reaping, a flood of
        // short-lived connections would grow connections_ (and keep
        // one exited-but-unjoined thread each) without bound.
        reapFinishedConnections();

        // Connection-count admission: shed with a backoff hint
        // instead of accumulating a thread per flood connection. The
        // BUSY write is best-effort — the client may already be gone.
        if (liveConnections_.load() >= opts_.maxConnections) {
            std::string busy = busyLine(opts_.busyRetryMs);
            (void)!::send(fd, busy.data(), busy.size(),
                          MSG_NOSIGNAL);
            ::close(fd);
            continue;
        }

        ++liveConnections_;
        auto conn = std::make_unique<Connection>();
        Connection *raw = conn.get();
        raw->fd.store(fd);
        raw->thread = std::thread([this, raw] {
            try {
                FdIO io(raw->fd.load());
                AdmissionGate gate{inFlight_, opts_.maxInFlight,
                                   opts_.busyRetryMs};
                serveConnection(service_, io, &gate);
            } catch (...) {
                // Last-resort backstop: an exception escaping a
                // detached-from-main handler would std::terminate
                // the whole daemon.
            }
            // Close under connMutex_ so stop() can never observe the
            // fd between this close and a kernel-side reuse of its
            // number (its shutdown pass holds the same mutex).
            {
                std::lock_guard<std::mutex> lock(connMutex_);
                int cfd = raw->fd.exchange(-1);
                if (cfd >= 0)
                    ::close(cfd);
            }
            --liveConnections_;
            // Last: after this store the accept loop may join us.
            raw->done.store(true);
        });
        std::lock_guard<std::mutex> lock(connMutex_);
        connections_.push_back(std::move(conn));
    }
}

void
SocketServer::reapFinishedConnections()
{
    std::vector<std::unique_ptr<Connection>> finished;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto split = std::stable_partition(
            connections_.begin(), connections_.end(),
            [](const std::unique_ptr<Connection> &c) {
                return !c->done.load();
            });
        for (auto it = split; it != connections_.end(); ++it)
            finished.push_back(std::move(*it));
        connections_.erase(split, connections_.end());
    }
    // Join outside connMutex_: a handler's own close takes that
    // mutex, and done=true only proves it is past the close, not
    // that the thread has fully exited.
    for (auto &conn : finished) {
        if (conn->thread.joinable())
            conn->thread.join();
    }
}

void
SocketServer::stop()
{
    if (!running_)
        return;
    running_ = false;
    // Closing the listen fd unblocks accept(); shutting down live
    // connection fds unblocks their reads. Handlers close their own
    // fds, so stop() only ever shuts down (never double-closes), and
    // connMutex_ serializes this pass against those closes — a
    // handler cannot close (and the kernel recycle) an fd between
    // our load and shutdown.
    int lfd = listenFd_.exchange(-1);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    acceptThread_.join();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto &conn : connections_) {
            int fd = conn->fd.load();
            if (fd >= 0)
                ::shutdown(fd, SHUT_RDWR);
        }
    }
    for (auto &conn : connections_) {
        if (conn->thread.joinable())
            conn->thread.join();
    }
    connections_.clear();
    if (!opts_.unixPath.empty())
        ::unlink(opts_.unixPath.c_str());
    boundPort_ = -1;
}

} // namespace repro::service
