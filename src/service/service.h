/**
 * @file
 * Matching-as-a-service session core.
 *
 * The batch pipeline recompiles, re-analyzes and re-solves everything
 * on every invocation; MatchService is the long-lived alternative a
 * daemon fronts. It keeps one session per client module name (the
 * submitted source, its compiled ir::Module, and the last report) and
 * routes every submission through a cache-attached MatchingDriver, so
 * resubmitting an edited module re-solves only the functions whose
 * structural contentHash() changed — every unchanged function replays
 * its cached matches, re-anchored onto the freshly compiled IR (see
 * driver/match_cache.h for the keying and portability story).
 *
 * The MatchCache is shared across all sessions: two clients
 * submitting the same kernel body share one entry, regardless of
 * module or function names.
 *
 * All public methods are mutex-guarded; concurrent connections of the
 * socket server may call into one MatchService freely. Submitted
 * modules stay alive until their session is replaced, dropped or
 * reset, so cached analyses deposited for live functions can never
 * dangle (the driver's epoch guard covers the replacement window).
 */
#ifndef SERVICE_SERVICE_H
#define SERVICE_SERVICE_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/driver.h"

namespace repro::service {

/** Service configuration. */
struct ServiceOptions
{
    /** Limits forwarded to every constraint solve. */
    solver::SolverLimits limits;
    /** Match-cache entry bound (LRU beyond this). */
    size_t cacheCapacity = driver::MatchCache::kDefaultCapacity;
    /**
     * Solve deadline applied to every submission that does not carry
     * its own DEADLINE_MS; 0 = unbounded. Deadline expiry degrades
     * the response (partial matches, degraded=deadline), it never
     * fails it.
     */
    uint64_t defaultDeadlineMillis = 0;
    /**
     * Backend selection surfaced on MATCH lines. Under CostModel
     * every submission additionally plans each match against all
     * legal backend targets (static workload estimates — the service
     * never executes client code) and MATCH lines grow
     * backend=/cost_ms=/alt= keys; Fixed (default) keeps the wire
     * format byte-identical to earlier protocol v1 servers.
     */
    transform::BackendPolicy backendPolicy =
        transform::BackendPolicy::Fixed;
};

/** One matched idiom instance, in wire-friendly form. */
struct MatchOutcome
{
    std::string function;
    std::string idiom;
    idioms::IdiomClass cls = idioms::IdiomClass::Other;
    /** Backend selection (CostModel submissions only). */
    bool hasBackend = false;
    /** Chosen target token, e.g. "cuBLAS@GPU". */
    std::string backend;
    double predictedMs = 0.0;
    /** Rejected alternatives (token, predicted ms), cost-ascending. */
    std::vector<std::pair<std::string, double>> rejected;
};

/** Per-function result of one submission. */
struct FunctionOutcome
{
    std::string name;
    uint64_t contentHash = 0;
    size_t matches = 0;
    /** True when replayed from the cross-request cache. */
    bool fromCache = false;
};

/** Result of one SUBMIT. */
struct SubmitOutcome
{
    std::string module;
    bool ok = false;
    /** Compile diagnostics (first line) when !ok. */
    std::string error;

    /**
     * Empty for a complete solve; "budget" / "deadline" when the
     * solver gave up early. The matches listed are then valid but
     * possibly incomplete — and were NOT deposited into the shared
     * cache, so a later resubmission re-solves instead of replaying
     * the truncated result.
     */
    std::string degraded;

    size_t functions = 0;
    size_t matches = 0;
    /** Functions replayed from / missed in the shared cache. */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    double compileMillis = 0.0;
    double matchMillis = 0.0;

    std::vector<FunctionOutcome> perFunction;
    std::vector<MatchOutcome> matchList;
};

/** The long-lived matching service. */
class MatchService
{
  public:
    explicit MatchService(ServiceOptions opts = {});

    /**
     * Compile @p source as module @p moduleName and match it,
     * replaying every function already known to the cache. Replaces
     * the module's previous session on success; on a compile error
     * the previous session (if any) survives untouched.
     *
     * @p deadlineMillis bounds the solve wall-clock (0 = fall back
     * to ServiceOptions::defaultDeadlineMillis; 0 there too =
     * unbounded). An expired deadline still succeeds, with
     * SubmitOutcome::degraded set and partial matches.
     *
     * Every compiled module additionally runs through the
     * dominance-aware IR verifier (always, independent of the
     * REPRO_VERIFY mode): a module with any error-tier defect is
     * rejected with a structured "invalid-ir rule=... " error before
     * it can reach the session store or the shared cache.
     */
    SubmitOutcome submit(const std::string &moduleName,
                         const std::string &source,
                         uint64_t deadlineMillis = 0);

    /** The last successful outcome for @p moduleName, if any. */
    bool lastOutcome(const std::string &moduleName,
                     SubmitOutcome *out) const;

    /** Drop one session; returns false when absent. */
    bool drop(const std::string &moduleName);

    /** Drop every session and every cache entry. */
    void reset();

    size_t sessionCount() const;

    driver::CacheCounters cacheCounters() const;
    size_t cacheSize() const;
    size_t cacheCapacity() const;
    void setCacheCapacity(size_t capacity);

    /** Identity of the idiom set all cache keys embed. */
    uint64_t idiomSetHash() const;

    /**
     * The shared match cache, for snapshot save/load (see
     * driver/cache_snapshot.h). The cache is internally synchronized,
     * so snapshotting while requests run is safe — the writer walks a
     * shared_ptr view, never the live LRU list.
     */
    driver::MatchCache &cache() { return *cache_; }
    const driver::MatchCache &cache() const { return *cache_; }

  private:
    struct Session
    {
        std::string source;
        std::unique_ptr<ir::Module> module;
        SubmitOutcome outcome;
    };

    mutable std::mutex mutex_;
    ServiceOptions opts_;
    std::shared_ptr<driver::MatchCache> cache_;
    driver::MatchingDriver driver_;
    std::map<std::string, Session> sessions_;
};

} // namespace repro::service

#endif // SERVICE_SERVICE_H
