#include "service/protocol.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace repro::service {

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    return tokens;
}

namespace {

bool
parseSize(const std::string &token, size_t *out)
{
    if (token.empty())
        return false;
    size_t value = 0;
    for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        if (value > (~size_t(0) - (c - '0')) / 10)
            return false;
        value = value * 10 + static_cast<size_t>(c - '0');
    }
    *out = value;
    return true;
}

Request
invalid(const std::string &why)
{
    Request r;
    r.error = why;
    return r;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    auto tokens = tokenize(line);
    if (tokens.empty())
        return invalid("empty request");
    const std::string &verb = tokens[0];
    Request r;

    if (verb == "HELLO") {
        if (tokens.size() != 1)
            return invalid("HELLO takes no arguments");
        r.verb = Request::Verb::Hello;
    } else if (verb == "SUBMIT") {
        if (tokens.size() != 3 && tokens.size() != 4) {
            return invalid("usage: SUBMIT <module> <nbytes|<<TERM> "
                           "[DEADLINE_MS=<n>]");
        }
        r.module = tokens[1];
        if (tokens[2].size() > 2 && tokens[2][0] == '<' &&
            tokens[2][1] == '<') {
            r.terminator = tokens[2].substr(2);
        } else if (!parseSize(tokens[2], &r.payloadBytes)) {
            return invalid("SUBMIT payload size is not a number");
        }
        if (tokens.size() == 4) {
            const std::string &opt = tokens[3];
            const std::string prefix = "DEADLINE_MS=";
            size_t millis = 0;
            if (opt.compare(0, prefix.size(), prefix) != 0 ||
                !parseSize(opt.substr(prefix.size()), &millis))
                return invalid("bad SUBMIT option: " + opt);
            r.deadlineMillis = millis;
        }
        r.verb = Request::Verb::Submit;
    } else if (verb == "MATCHES") {
        if (tokens.size() != 2)
            return invalid("usage: MATCHES <module>");
        r.module = tokens[1];
        r.verb = Request::Verb::Matches;
    } else if (verb == "STATS") {
        r.verb = Request::Verb::Stats;
    } else if (verb == "CAPACITY") {
        if (tokens.size() != 2 || !parseSize(tokens[1], &r.capacity))
            return invalid("usage: CAPACITY <entries>");
        r.verb = Request::Verb::Capacity;
    } else if (verb == "DROP") {
        if (tokens.size() != 2)
            return invalid("usage: DROP <module>");
        r.module = tokens[1];
        r.verb = Request::Verb::Drop;
    } else if (verb == "RESET") {
        r.verb = Request::Verb::Reset;
    } else if (verb == "QUIT") {
        r.verb = Request::Verb::Quit;
    } else {
        return invalid("unknown verb: " + verb);
    }
    return r;
}

std::string
classToken(idioms::IdiomClass cls)
{
    switch (cls) {
      case idioms::IdiomClass::ScalarReduction:
        return "scalar_reduction";
      case idioms::IdiomClass::HistogramReduction:
        return "histogram_reduction";
      case idioms::IdiomClass::Stencil:
        return "stencil";
      case idioms::IdiomClass::MatrixOp:
        return "matrix_op";
      case idioms::IdiomClass::SparseMatrixOp:
        return "sparse_matrix_op";
      case idioms::IdiomClass::Other:
        break;
    }
    return "other";
}

std::string
hashToken(uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::vector<std::string>
formatSubmitResponse(const SubmitOutcome &outcome)
{
    std::vector<std::string> lines;
    if (!outcome.ok) {
        lines.push_back("ERR " + outcome.error);
        return lines;
    }
    {
        std::ostringstream os;
        os << "OK module=" << outcome.module
           << " functions=" << outcome.functions
           << " matches=" << outcome.matches
           << " hits=" << outcome.cacheHits
           << " misses=" << outcome.cacheMisses;
        char ms[64];
        std::snprintf(ms, sizeof(ms),
                      " compile_ms=%.3f match_ms=%.3f",
                      outcome.compileMillis, outcome.matchMillis);
        os << ms;
        // Appended last so existing clients parsing the fixed prefix
        // keep working; only degraded responses carry the key at all.
        if (!outcome.degraded.empty())
            os << " degraded=" << outcome.degraded;
        lines.push_back(os.str());
    }
    for (const auto &fo : outcome.perFunction) {
        std::ostringstream os;
        os << "FUNC name=" << fo.name
           << " hash=" << hashToken(fo.contentHash)
           << " matches=" << fo.matches
           << " source=" << (fo.fromCache ? "cache" : "solve");
        lines.push_back(os.str());
    }
    for (const auto &mo : outcome.matchList) {
        std::ostringstream os;
        os << "MATCH function=" << mo.function
           << " idiom=" << mo.idiom
           << " class=" << classToken(mo.cls);
        // Cost-model submissions only (same compatibility discipline
        // as degraded= above): Fixed-policy MATCH lines stay
        // byte-identical to earlier protocol v1 servers.
        if (mo.hasBackend) {
            char ms[48];
            std::snprintf(ms, sizeof(ms), "%.6g", mo.predictedMs);
            os << " backend=" << mo.backend << " cost_ms=" << ms;
            if (!mo.rejected.empty()) {
                os << " alt=";
                bool first = true;
                for (const auto &[token, cost] : mo.rejected) {
                    std::snprintf(ms, sizeof(ms), "%.6g", cost);
                    os << (first ? "" : ",") << token << ":" << ms;
                    first = false;
                }
            }
        }
        lines.push_back(os.str());
    }
    lines.push_back("END");
    return lines;
}

std::string
formatStats(const driver::CacheCounters &counters, size_t entries,
            size_t capacity, size_t sessions)
{
    std::ostringstream os;
    os << "OK entries=" << entries << " capacity=" << capacity
       << " hits=" << counters.hits << " misses=" << counters.misses
       << " evictions=" << counters.evictions
       << " insertions=" << counters.insertions
       << " sessions=" << sessions;
    return os.str();
}

} // namespace repro::service
