/**
 * @file
 * The service line protocol (version 1).
 *
 * Requests are single lines of space-separated tokens; SUBMIT carries
 * a source payload either counted in bytes or delimited heredoc-style
 * (convenient for humans on the stdio REPL). Responses are one `OK
 * key=value ...` or `ERR message` line, optionally followed by detail
 * lines and a terminating `END` for multi-line responses. The full
 * grammar lives in docs/SERVICE.md.
 *
 *   HELLO
 *   SUBMIT <module> <nbytes> [DEADLINE_MS=<n>]\n<nbytes of source>
 *   SUBMIT <module> <<TERM [DEADLINE_MS=<n>]\n<source lines...>\nTERM
 *   MATCHES <module>
 *   STATS
 *   CAPACITY <n>
 *   DROP <module>
 *   RESET
 *   QUIT
 *
 * This header is the wire-format seam shared by the server, the
 * tests and the example client: request parsing on one side,
 * response rendering from service outcome structs on the other.
 */
#ifndef SERVICE_PROTOCOL_H
#define SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "driver/match_cache.h"
#include "service/service.h"

namespace repro::service {

/** Protocol revision reported by HELLO. */
constexpr int kProtocolVersion = 1;

/**
 * Upper bound on a SUBMIT payload, counted or heredoc (and on any
 * single request line). Oversized counted submissions are rejected
 * before any buffer is allocated, so a hostile byte count can not
 * drive std::string::resize into std::length_error / bad_alloc and
 * take the daemon down; oversized heredocs fail the one request.
 */
constexpr size_t kMaxPayloadBytes = 16u * 1024 * 1024;

/** One parsed request line (payload not yet read for SUBMIT). */
struct Request
{
    enum class Verb
    {
        Hello,
        Submit,
        Matches,
        Stats,
        Capacity,
        Drop,
        Reset,
        Quit,
        Invalid,
    };

    Verb verb = Verb::Invalid;
    std::string module;     ///< SUBMIT / MATCHES / DROP
    size_t payloadBytes = 0; ///< SUBMIT counted form
    std::string terminator; ///< SUBMIT heredoc form; empty otherwise
    size_t capacity = 0;    ///< CAPACITY
    /** SUBMIT per-request solve deadline; 0 = daemon default. */
    uint64_t deadlineMillis = 0;
    std::string error;      ///< Verb::Invalid diagnosis
};

/** Split a line into whitespace-separated tokens. */
std::vector<std::string> tokenize(const std::string &line);

/** Parse one request line (never reads the SUBMIT payload). */
Request parseRequest(const std::string &line);

/** Lowercase wire token of an idiom class, e.g. "scalar_reduction". */
std::string classToken(idioms::IdiomClass cls);

/** 16-digit lowercase hex rendering used for all hashes. */
std::string hashToken(uint64_t hash);

/**
 * Render a SUBMIT / MATCHES response: the OK summary line, one FUNC
 * line per function, one MATCH line per match, and END — or a single
 * ERR line when the outcome failed.
 */
std::vector<std::string>
formatSubmitResponse(const SubmitOutcome &outcome);

/** Render the STATS response line. */
std::string formatStats(const driver::CacheCounters &counters,
                        size_t entries, size_t capacity,
                        size_t sessions);

} // namespace repro::service

#endif // SERVICE_PROTOCOL_H
