#include "frontend/passes.h"

#include <deque>
#include <set>
#include <vector>

namespace repro::frontend {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;

int
removeUnreachableBlocks(Function *func)
{
    if (func->isDeclaration())
        return 0;
    std::set<BasicBlock *> reachable;
    std::deque<BasicBlock *> queue;
    queue.push_back(func->entry());
    reachable.insert(func->entry());
    while (!queue.empty()) {
        BasicBlock *bb = queue.front();
        queue.pop_front();
        for (BasicBlock *s : bb->successors()) {
            if (reachable.insert(s).second)
                queue.push_back(s);
        }
    }

    std::vector<BasicBlock *> dead;
    for (const auto &bb : func->blocks()) {
        if (!reachable.count(bb.get()))
            dead.push_back(bb.get());
    }
    if (dead.empty())
        return 0;

    // Remove phi incomings that reference dead predecessors.
    for (const auto &bb : func->blocks()) {
        if (!reachable.count(bb.get()))
            continue;
        for (const auto &inst : bb->insts()) {
            if (!inst->is(Opcode::Phi))
                continue;
            Instruction *phi = inst.get();
            bool any_dead = false;
            std::vector<std::pair<ir::Value *, BasicBlock *>> keep;
            for (size_t k = 0; k < phi->numOperands(); ++k) {
                BasicBlock *in = phi->incomingBlocks()[k];
                if (reachable.count(in))
                    keep.emplace_back(phi->operand(k), in);
                else
                    any_dead = true;
            }
            if (any_dead) {
                phi->clearIncoming();
                for (auto &[v, b] : keep)
                    phi->addIncoming(v, b);
            }
        }
    }

    // Drop operand edges inside dead blocks, then delete the blocks.
    for (BasicBlock *bb : dead) {
        for (const auto &inst : bb->insts())
            inst->dropOperands();
    }
    for (BasicBlock *bb : dead) {
        // Instructions in dead blocks may still formally "use" each
        // other; operand edges were dropped above so destruction is
        // safe even with users tracked.
        while (!bb->empty())
            bb->detach(bb->insts().back().get());
        func->eraseBlock(bb);
    }
    return static_cast<int>(dead.size());
}

int
aggressiveDCE(Function *func)
{
    if (func->isDeclaration())
        return 0;
    std::set<Instruction *> live;
    std::deque<Instruction *> queue;

    auto mark = [&](ir::Value *v) {
        if (!v->isInstruction())
            return;
        auto *inst = static_cast<Instruction *>(v);
        if (live.insert(inst).second)
            queue.push_back(inst);
    };

    for (const auto &bb : func->blocks()) {
        for (const auto &inst : bb->insts()) {
            bool root = inst->isTerminator() ||
                        inst->is(Opcode::Store) ||
                        inst->is(Opcode::Call);
            if (root)
                mark(inst.get());
        }
    }
    while (!queue.empty()) {
        Instruction *inst = queue.front();
        queue.pop_front();
        for (ir::Value *op : inst->operands())
            mark(op);
    }

    std::vector<Instruction *> dead;
    for (const auto &bb : func->blocks()) {
        for (const auto &inst : bb->insts()) {
            if (!live.count(inst.get()))
                dead.push_back(inst.get());
        }
    }
    for (Instruction *inst : dead)
        inst->dropOperands();
    for (Instruction *inst : dead)
        inst->eraseFromParent();
    return static_cast<int>(dead.size());
}

void
cleanupModule(ir::Module &module)
{
    for (const auto &f : module.functions()) {
        removeUnreachableBlocks(f.get());
        aggressiveDCE(f.get());
    }
}

} // namespace repro::frontend
