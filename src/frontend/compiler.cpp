#include "frontend/compiler.h"

#include "frontend/codegen.h"
#include "frontend/licm.h"
#include "frontend/mem2reg.h"
#include "frontend/parser.h"
#include "frontend/passes.h"
#include "ir/verifier.h"

namespace repro::frontend {

bool
compileMiniC(const std::string &source, ir::Module &module,
             DiagEngine &diags)
{
    auto unit = parseMiniC(source, diags);
    if (!unit)
        return false;
    if (!generateIR(*unit, module, diags))
        return false;
    for (const auto &f : module.functions())
        removeUnreachableBlocks(f.get());
    promoteModule(module);
    for (const auto &f : module.functions()) {
        aggressiveDCE(f.get());
        optimizeFunction(f.get());
    }

    auto problems = ir::verifyModule(module);
    for (const auto &p : problems)
        diags.error({}, "invalid IR after lowering: " + p);
    return problems.empty();
}

void
compileMiniCOrDie(const std::string &source, ir::Module &module)
{
    DiagEngine diags;
    if (!compileMiniC(source, module, diags))
        throw FatalError("MiniC compilation failed:\n" + diags.dump());
}

} // namespace repro::frontend
