#include "frontend/compiler.h"

#include "frontend/codegen.h"
#include "frontend/licm.h"
#include "frontend/mem2reg.h"
#include "frontend/parser.h"
#include "frontend/passes.h"
#include "ir/verifier.h"

namespace repro::frontend {

bool
compileMiniC(const std::string &source, ir::Module &module,
             DiagEngine &diags, ir::VerifyMode verify)
{
    const bool boundaries = verify == ir::VerifyMode::Boundaries;
    auto unit = parseMiniC(source, diags);
    if (!unit)
        return false;
    if (!generateIR(*unit, module, diags))
        return false;
    for (const auto &f : module.functions())
        removeUnreachableBlocks(f.get());
    if (boundaries)
        ir::verifyOrThrow(module, "frontend-codegen");
    promoteModule(module);
    if (boundaries)
        ir::verifyOrThrow(module, "frontend-mem2reg");
    for (const auto &f : module.functions()) {
        aggressiveDCE(f.get());
        optimizeFunction(f.get());
    }
    if (boundaries)
        ir::verifyOrThrow(module, "frontend-optimize");

    auto problems = ir::verifyModule(module);
    for (const auto &p : problems)
        diags.error({}, "invalid IR after lowering: " + p);
    return problems.empty();
}

void
compileMiniCOrDie(const std::string &source, ir::Module &module,
                  ir::VerifyMode verify)
{
    DiagEngine diags;
    if (!compileMiniC(source, module, diags, verify))
        throw FatalError("MiniC compilation failed:\n" + diags.dump());
}

} // namespace repro::frontend
