/**
 * @file
 * Abstract syntax tree of MiniC.
 *
 * MiniC covers the C constructs the NAS/Parboil kernels need: the
 * scalar types int/long/float/double, pointers, multi-dimensional
 * arrays, for/while/if control flow, compound assignment and function
 * calls. That is exactly the input surface the paper's detection flow
 * consumes after clang lowers C to LLVM IR.
 */
#ifndef FRONTEND_AST_H
#define FRONTEND_AST_H

#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace repro::frontend {

/** Scalar base types of MiniC. */
enum class BaseType
{
    Void,
    Int,
    Long,
    Float,
    Double,
};

/** A MiniC type: base type, pointer depth and array dimensions. */
struct TypeSpec
{
    BaseType base = BaseType::Int;
    int pointerDepth = 0;
    /** Array dimensions, outermost first; 0 encodes an unsized first
     *  dimension (function parameters: decays to a pointer). */
    std::vector<int64_t> dims;

    bool isArray() const { return !dims.empty(); }
    bool isPointerLike() const { return pointerDepth > 0 || isArray(); }
};

// Expressions --------------------------------------------------------------

struct Expr
{
    enum class Kind
    {
        IntLit,
        FloatLit,
        VarRef,
        Index,     ///< base[index]
        Unary,     ///< -x, !x, *p, ++x, --x
        Binary,    ///< arithmetic / comparison / logical
        Assign,    ///< lhs = rhs, also compound ops
        Call,
        PostIncDec,
        Ternary,   ///< c ? a : b
    };

    Kind kind;
    SourceLoc loc;

    // Literals.
    int64_t intValue = 0;
    double floatValue = 0.0;
    bool isFloat32 = false;

    // VarRef / Call.
    std::string name;

    // Operator text for Unary/Binary/Assign/PostIncDec.
    std::string op;

    std::vector<std::unique_ptr<Expr>> children;

    explicit Expr(Kind k) : kind(k) {}
};

using ExprPtr = std::unique_ptr<Expr>;

// Statements ---------------------------------------------------------------

struct Stmt
{
    enum class Kind
    {
        Block,
        Decl,
        ExprStmt,
        If,
        While,
        DoWhile,
        For,
        Return,
        Break,
        Continue,
        Empty,
    };

    Kind kind;
    SourceLoc loc;

    // Decl.
    TypeSpec declType;
    std::string declName;
    ExprPtr init;

    // If/While/For: cond; For: initStmt, incExpr.
    ExprPtr cond;
    std::unique_ptr<Stmt> initStmt;
    ExprPtr incExpr;

    // Return / ExprStmt.
    ExprPtr expr;

    // Block body / If then+else / loop body.
    std::vector<std::unique_ptr<Stmt>> body;
    std::vector<std::unique_ptr<Stmt>> elseBody;

    explicit Stmt(Kind k) : kind(k) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

// Declarations ---------------------------------------------------------------

/** One function parameter. */
struct ParamDecl
{
    TypeSpec type;
    std::string name;
};

/** A function definition or declaration. */
struct FunctionDecl
{
    TypeSpec returnType;
    std::string name;
    std::vector<ParamDecl> params;
    StmtPtr body; ///< null for declarations
    SourceLoc loc;

    /** `__protect` / `__protect(eddi|cfcss)` reliability annotation. */
    bool protect = false;
    std::string protectMode; ///< "", "eddi" or "cfcss"
};

/** A module-level variable. */
struct GlobalDecl
{
    TypeSpec type;
    std::string name;
    SourceLoc loc;
};

/** A full translation unit. */
struct TranslationUnit
{
    std::vector<GlobalDecl> globals;
    std::vector<std::unique_ptr<FunctionDecl>> functions;
};

} // namespace repro::frontend

#endif // FRONTEND_AST_H
