#include "frontend/licm.h"

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/function_analyses.h"
#include "frontend/passes.h"
#include "support/diagnostics.h"

namespace repro::frontend {

using analysis::DomTree;
using analysis::Loop;
using analysis::LoopInfo;
using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

namespace {

/** Pure, non-trapping instructions that may always be hoisted. */
bool
isSpeculatable(const Instruction *inst)
{
    switch (inst->opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::AShr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::GEP:
      case Opcode::ICmp:
      case Opcode::FCmp:
      case Opcode::Select:
      case Opcode::SExt:
      case Opcode::ZExt:
      case Opcode::Trunc:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc:
        return true;
      default:
        return false;
    }
}

/**
 * The loop's blocks in function layout order. Loop::blocks is a
 * std::set of pointers: iterating it directly makes the hoist /
 * promotion order depend on heap addresses, so two compiles of the
 * same source in one process could emit differently-ordered (if
 * semantically equal) IR — which breaks every byte-identical
 * differential comparison downstream.
 */
std::vector<BasicBlock *>
blocksInLayoutOrder(const Function *func, const Loop &loop)
{
    std::vector<BasicBlock *> out;
    out.reserve(loop.blocks.size());
    for (const auto &bb : func->blocks()) {
        if (loop.contains(bb.get()))
            out.push_back(bb.get());
    }
    return out;
}

/** All operands defined outside @p loop? */
bool
operandsInvariant(const Instruction *inst, const Loop &loop)
{
    for (const Value *op : inst->operands()) {
        if (const auto *oi = dynamic_cast<const Instruction *>(op)) {
            if (loop.contains(oi))
                return false;
        }
    }
    return true;
}

bool
loopHasSideEffects(const Loop &loop)
{
    for (BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts()) {
            if (inst->is(Opcode::Store) || inst->is(Opcode::Call))
                return true;
        }
    }
    return false;
}

/** One LICM sweep over one loop. Returns hoisted count. */
int
hoistInLoop(Function *func, const Loop &loop, const DomTree &dom)
{
    BasicBlock *preheader = loop.preheader();
    if (!preheader || !preheader->terminator())
        return 0;
    bool pure_loop = !loopHasSideEffects(loop);
    BasicBlock *latch = loop.latch;

    int hoisted = 0;
    // Hoisting moves instructions, never blocks: one layout pass.
    const std::vector<BasicBlock *> body =
        blocksInLayoutOrder(func, loop);
    bool changed = true;
    while (changed) {
        changed = false;
        for (BasicBlock *bb : body) {
            for (size_t i = 0; i < bb->size(); ++i) {
                Instruction *inst = bb->insts()[i].get();
                bool hoistable = false;
                if (isSpeculatable(inst)) {
                    hoistable = operandsInvariant(inst, loop);
                } else if (inst->is(Opcode::Load) && pure_loop) {
                    // Loads hoist only from blocks that execute on
                    // every iteration (no speculative faults).
                    hoistable =
                        operandsInvariant(inst, loop) && latch &&
                        dom.dominates(bb, latch);
                }
                if (!hoistable)
                    continue;
                auto owned = bb->detach(inst);
                preheader->insert(preheader->size() - 1,
                                  std::move(owned));
                ++hoisted;
                changed = true;
                --i;
            }
        }
    }
    return hoisted;
}

/** Single loop-exit block if the loop has exactly one; else null. */
BasicBlock *
uniqueExitBlock(const Loop &loop)
{
    BasicBlock *exit = nullptr;
    for (BasicBlock *bb : loop.blocks) {
        for (BasicBlock *succ : bb->successors()) {
            if (loop.contains(succ))
                continue;
            if (exit && exit != succ)
                return nullptr;
            exit = succ;
        }
    }
    return exit;
}

/** Can the two access bases be proven distinct? */
bool
provablyDistinct(const Value *a, const Value *b)
{
    if (a == b)
        return false;
    auto is_alloca = [](const Value *v) {
        return v->isInstruction() &&
               static_cast<const Instruction *>(v)->is(Opcode::Alloca);
    };
    if (a->isGlobal() && b->isGlobal())
        return true;
    if (is_alloca(a) && is_alloca(b))
        return true;
    if (is_alloca(a) || is_alloca(b))
        return true; // local memory cannot alias external pointers
    return false;    // two arguments / unknown: may alias
}

int
promoteInLoop(Function *func, const Loop &loop, const DomTree &dom)
{
    BasicBlock *preheader = loop.preheader();
    BasicBlock *exit = uniqueExitBlock(loop);
    BasicBlock *header = loop.header;
    BasicBlock *latch = loop.latch;
    if (!preheader || !exit || !latch || !preheader->terminator())
        return 0;
    // The exit must be reached from the header only (canonical
    // rotated-less loop): its in-loop predecessors == {header}.
    for (BasicBlock *p : exit->predecessors()) {
        if (loop.contains(p) && p != header)
            return 0;
    }

    // Gather memory operations of the loop.
    struct Access
    {
        Instruction *inst;
        Value *address;
        bool isStore;
    };
    std::vector<Access> accesses;
    for (BasicBlock *bb : blocksInLayoutOrder(func, loop)) {
        for (const auto &inst : bb->insts()) {
            if (inst->is(Opcode::Call))
                return 0; // calls may touch anything
            if (inst->is(Opcode::Load)) {
                accesses.push_back(
                    {inst.get(), inst->operand(0), false});
            } else if (inst->is(Opcode::Store)) {
                accesses.push_back(
                    {inst.get(), inst->operand(1), true});
            }
        }
    }

    int promoted = 0;
    // Candidate stores: invariant address, single store to it.
    for (const Access &candidate : accesses) {
        if (!candidate.isStore)
            continue;
        Value *addr = candidate.address;
        if (const auto *ai = dynamic_cast<Instruction *>(addr)) {
            if (loop.contains(ai))
                continue; // address not invariant
        }
        const Value *base = analysis::basePointerOf(addr);

        bool ok = true;
        std::vector<Instruction *> loads_of_addr;
        for (const Access &other : accesses) {
            if (other.inst == candidate.inst)
                continue;
            if (other.address == addr) {
                if (other.isStore) {
                    ok = false; // several stores: not a single acc
                    break;
                }
                loads_of_addr.push_back(other.inst);
                continue;
            }
            const Value *obase = analysis::basePointerOf(other.address);
            if (!provablyDistinct(base, obase)) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        // Every load of the accumulator must happen before the store
        // in each iteration, and the store must execute on every
        // iteration.
        if (!dom.dominates(candidate.inst->parent(), latch))
            continue;
        for (Instruction *load : loads_of_addr) {
            if (!dom.dominates(load, candidate.inst)) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        Value *stored = candidate.inst->operand(0);
        if (const auto *si = dynamic_cast<Instruction *>(stored)) {
            if (!dom.dominates(si, latch->terminator()))
                continue;
        }

        // Perform the promotion.
        ir::Module &module = *func->parentModule();
        ir::Type *elem = addr->type()->element();
        // 1. Initial load in the preheader.
        auto init = std::make_unique<Instruction>(
            Opcode::Load, elem, func->uniqueName("promoted.init"));
        init->addOperand(addr);
        Instruction *init_load = preheader->insert(
            preheader->size() - 1, std::move(init));
        // 2. Phi in the header.
        auto phi = std::make_unique<Instruction>(
            Opcode::Phi, elem, func->uniqueName("promoted.phi"));
        Instruction *acc = header->insert(0, std::move(phi));
        acc->addIncoming(init_load, preheader);
        acc->addIncoming(stored, latch);
        // 3. Replace in-loop loads.
        for (Instruction *load : loads_of_addr) {
            load->replaceAllUsesWith(acc);
            load->eraseFromParent();
        }
        // 4. Store the final value at the loop exit.
        auto fin = std::make_unique<Instruction>(
            Opcode::Store, module.types().voidTy(), "");
        fin->addOperand(acc);
        fin->addOperand(addr);
        size_t pos = 0;
        while (pos < exit->size() &&
               exit->insts()[pos]->is(Opcode::Phi)) {
            ++pos;
        }
        exit->insert(pos, std::move(fin));
        // 5. Remove the original store.
        candidate.inst->eraseFromParent();
        ++promoted;
        // Analyses stale after mutation: caller re-runs.
        return promoted;
    }
    return promoted;
}

} // namespace

int
hoistLoopInvariants(Function *func)
{
    if (func->isDeclaration())
        return 0;
    int total = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        analysis::DomTree dom(func, false);
        analysis::LoopInfo loops(func, dom);
        for (const auto &loop : loops.loops()) {
            int h = hoistInLoop(func, *loop, dom);
            if (h > 0) {
                total += h;
                changed = true;
            }
        }
        if (changed)
            continue;
    }
    return total;
}

int
promoteMemoryAccumulators(Function *func)
{
    if (func->isDeclaration())
        return 0;
    int total = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        analysis::DomTree dom(func, false);
        analysis::LoopInfo loops(func, dom);
        // Innermost loops first.
        std::vector<Loop *> order;
        for (const auto &loop : loops.loops())
            order.push_back(loop.get());
        // stable: ties keep LoopInfo's deterministic discovery order.
        std::stable_sort(
            order.begin(), order.end(),
            [](Loop *a, Loop *b) { return a->depth > b->depth; });
        for (Loop *loop : order) {
            if (promoteInLoop(func, *loop, dom) > 0) {
                ++total;
                changed = true;
                break; // analyses stale; restart
            }
        }
    }
    return total;
}

void
optimizeFunction(ir::Function *func)
{
    if (func->isDeclaration())
        return;
    hoistLoopInvariants(func);
    promoteMemoryAccumulators(func);
    hoistLoopInvariants(func);
    aggressiveDCE(func);
}

} // namespace repro::frontend
