/**
 * @file
 * MiniC to SSA IR code generation.
 *
 * Lowering follows the clang/LLVM recipe: every local lives in an
 * alloca, control flow becomes explicit blocks, and a subsequent
 * mem2reg pass (mem2reg.h) promotes scalars into SSA registers with
 * phi nodes — producing IR of the shape shown in Figure 4 of the
 * paper.
 */
#ifndef FRONTEND_CODEGEN_H
#define FRONTEND_CODEGEN_H

#include "frontend/ast.h"
#include "ir/function.h"

namespace repro::frontend {

/**
 * Generate IR for @p unit into @p module. Returns false and fills
 * @p diags on semantic errors (unknown names, bad types).
 */
bool generateIR(const TranslationUnit &unit, ir::Module &module,
                DiagEngine &diags);

} // namespace repro::frontend

#endif // FRONTEND_CODEGEN_H
