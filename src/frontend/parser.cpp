#include "frontend/parser.h"

#include <map>

namespace repro::frontend {

namespace {

/** Parser state over the token stream. */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagEngine &diags)
        : tokens_(std::move(tokens)), diags_(diags)
    {}

    std::unique_ptr<TranslationUnit>
    parseUnit()
    {
        auto unit = std::make_unique<TranslationUnit>();
        while (!peek().is(TokKind::End)) {
            parseTopLevel(*unit);
        }
        return unit;
    }

  private:
    const Token &peek(int ahead = 0) const
    {
        size_t i = pos_ + static_cast<size_t>(ahead);
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    Token
    next()
    {
        Token t = peek();
        if (pos_ < tokens_.size() - 1)
            ++pos_;
        return t;
    }

    bool
    accept(TokKind kind, const std::string &text)
    {
        if (peek().is(kind, text)) {
            next();
            return true;
        }
        return false;
    }

    bool acceptPunct(const std::string &p)
    {
        return accept(TokKind::Punct, p);
    }

    void
    expectPunct(const std::string &p)
    {
        if (!acceptPunct(p)) {
            diags_.error(peek().loc, "expected '" + p + "' before '" +
                                         peek().text + "'");
            throw FatalError("MiniC parse error");
        }
    }

    bool
    atTypeKeyword() const
    {
        const Token &t = peek();
        return t.isKeyword("int") || t.isKeyword("long") ||
               t.isKeyword("float") || t.isKeyword("double") ||
               t.isKeyword("void") || t.isKeyword("const");
    }

    BaseType
    parseBaseType()
    {
        while (accept(TokKind::Keyword, "const")) {
        }
        Token t = next();
        BaseType base;
        if (t.isKeyword("int")) {
            base = BaseType::Int;
        } else if (t.isKeyword("long")) {
            // Accept "long long" and "long int".
            accept(TokKind::Keyword, "long");
            accept(TokKind::Keyword, "int");
            base = BaseType::Long;
        } else if (t.isKeyword("float")) {
            base = BaseType::Float;
        } else if (t.isKeyword("double")) {
            base = BaseType::Double;
        } else if (t.isKeyword("void")) {
            base = BaseType::Void;
        } else {
            diags_.error(t.loc, "expected type, got '" + t.text + "'");
            throw FatalError("MiniC parse error");
        }
        while (accept(TokKind::Keyword, "const")) {
        }
        return base;
    }

    TypeSpec
    parseTypePrefix()
    {
        TypeSpec type;
        type.base = parseBaseType();
        while (acceptPunct("*"))
            ++type.pointerDepth;
        while (accept(TokKind::Keyword, "const")) {
        }
        return type;
    }

    /** Parse trailing array dimensions after a declarator name. */
    void
    parseArraySuffix(TypeSpec &type, bool allow_unsized)
    {
        bool first = true;
        while (acceptPunct("[")) {
            if (acceptPunct("]")) {
                if (!first || !allow_unsized) {
                    diags_.error(peek().loc,
                                 "unsized dimension only allowed first");
                    throw FatalError("MiniC parse error");
                }
                type.dims.push_back(0);
            } else {
                Token n = next();
                if (!n.is(TokKind::IntLiteral)) {
                    diags_.error(n.loc, "expected array size literal");
                    throw FatalError("MiniC parse error");
                }
                type.dims.push_back(std::stoll(n.text));
                expectPunct("]");
            }
            first = false;
        }
    }

    void
    parseTopLevel(TranslationUnit &unit)
    {
        // Optional reliability annotation: `__protect` or
        // `__protect(eddi)` / `__protect(cfcss)` before the return
        // type marks the following function definition for hardening.
        bool protect = false;
        std::string protect_mode;
        if (accept(TokKind::Keyword, "__protect")) {
            protect = true;
            if (acceptPunct("(")) {
                Token mode = next();
                if (!mode.is(TokKind::Identifier) ||
                    (mode.text != "eddi" && mode.text != "cfcss")) {
                    diags_.error(mode.loc,
                                 "__protect mode must be 'eddi' or "
                                 "'cfcss', got '" +
                                     mode.text + "'");
                    throw FatalError("MiniC parse error");
                }
                protect_mode = mode.text;
                expectPunct(")");
            }
        }
        TypeSpec type = parseTypePrefix();
        Token name = next();
        if (!name.is(TokKind::Identifier)) {
            diags_.error(name.loc, "expected identifier at top level");
            throw FatalError("MiniC parse error");
        }
        if (protect && !peek().isPunct("(")) {
            diags_.error(name.loc,
                         "__protect only applies to functions");
            throw FatalError("MiniC parse error");
        }
        if (peek().isPunct("(")) {
            auto func = std::make_unique<FunctionDecl>();
            func->returnType = type;
            func->name = name.text;
            func->loc = name.loc;
            func->protect = protect;
            func->protectMode = protect_mode;
            expectPunct("(");
            if (!acceptPunct(")")) {
                do {
                    if (peek().isKeyword("void") &&
                        peek(1).isPunct(")")) {
                        next();
                        break;
                    }
                    ParamDecl param;
                    param.type = parseTypePrefix();
                    Token pname = next();
                    if (!pname.is(TokKind::Identifier)) {
                        diags_.error(pname.loc,
                                     "expected parameter name");
                        throw FatalError("MiniC parse error");
                    }
                    param.name = pname.text;
                    parseArraySuffix(param.type, true);
                    func->params.push_back(std::move(param));
                } while (acceptPunct(","));
                expectPunct(")");
            }
            if (acceptPunct(";")) {
                unit.functions.push_back(std::move(func));
                return;
            }
            func->body = parseBlock();
            unit.functions.push_back(std::move(func));
            return;
        }
        // Global variable(s).
        while (true) {
            GlobalDecl g;
            g.type = type;
            g.name = name.text;
            g.loc = name.loc;
            parseArraySuffix(g.type, false);
            unit.globals.push_back(std::move(g));
            if (acceptPunct(",")) {
                name = next();
                continue;
            }
            expectPunct(";");
            break;
        }
    }

    StmtPtr
    parseBlock()
    {
        expectPunct("{");
        auto block = std::make_unique<Stmt>(Stmt::Kind::Block);
        block->loc = peek().loc;
        while (!peek().isPunct("}")) {
            if (peek().is(TokKind::End)) {
                diags_.error(peek().loc, "unterminated block");
                throw FatalError("MiniC parse error");
            }
            block->body.push_back(parseStatement());
        }
        expectPunct("}");
        return block;
    }

    StmtPtr
    parseStatement()
    {
        const Token &t = peek();
        if (t.isPunct("{"))
            return parseBlock();
        if (t.isPunct(";")) {
            next();
            return std::make_unique<Stmt>(Stmt::Kind::Empty);
        }
        if (atTypeKeyword())
            return parseDecl();
        if (t.isKeyword("if"))
            return parseIf();
        if (t.isKeyword("while"))
            return parseWhile();
        if (t.isKeyword("do"))
            return parseDoWhile();
        if (t.isKeyword("for"))
            return parseFor();
        if (t.isKeyword("return")) {
            next();
            auto stmt = std::make_unique<Stmt>(Stmt::Kind::Return);
            stmt->loc = t.loc;
            if (!peek().isPunct(";"))
                stmt->expr = parseExpr();
            expectPunct(";");
            return stmt;
        }
        if (t.isKeyword("break")) {
            next();
            expectPunct(";");
            auto stmt = std::make_unique<Stmt>(Stmt::Kind::Break);
            stmt->loc = t.loc;
            return stmt;
        }
        if (t.isKeyword("continue")) {
            next();
            expectPunct(";");
            auto stmt = std::make_unique<Stmt>(Stmt::Kind::Continue);
            stmt->loc = t.loc;
            return stmt;
        }
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::ExprStmt);
        stmt->loc = t.loc;
        stmt->expr = parseExpr();
        expectPunct(";");
        return stmt;
    }

    StmtPtr
    parseDecl()
    {
        TypeSpec type = parseTypePrefix();
        auto first = parseOneDecl(type);
        if (peek().isPunct(",")) {
            // Multiple declarators share one statement list: wrap in a
            // block without scoping implications (MiniC has function
            // scope for simplicity).
            auto block = std::make_unique<Stmt>(Stmt::Kind::Block);
            block->loc = first->loc;
            block->body.push_back(std::move(first));
            while (acceptPunct(","))
                block->body.push_back(parseOneDecl(type));
            expectPunct(";");
            return block;
        }
        expectPunct(";");
        return first;
    }

    StmtPtr
    parseOneDecl(TypeSpec base_type)
    {
        TypeSpec type = base_type;
        while (acceptPunct("*"))
            ++type.pointerDepth;
        Token name = next();
        if (!name.is(TokKind::Identifier)) {
            diags_.error(name.loc, "expected variable name");
            throw FatalError("MiniC parse error");
        }
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::Decl);
        stmt->loc = name.loc;
        parseArraySuffix(type, false);
        stmt->declType = type;
        stmt->declName = name.text;
        if (acceptPunct("="))
            stmt->init = parseAssignExpr();
        return stmt;
    }

    StmtPtr
    parseIf()
    {
        Token t = next(); // if
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::If);
        stmt->loc = t.loc;
        expectPunct("(");
        stmt->cond = parseExpr();
        expectPunct(")");
        stmt->body.push_back(parseStatement());
        if (accept(TokKind::Keyword, "else"))
            stmt->elseBody.push_back(parseStatement());
        return stmt;
    }

    StmtPtr
    parseWhile()
    {
        Token t = next(); // while
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::While);
        stmt->loc = t.loc;
        expectPunct("(");
        stmt->cond = parseExpr();
        expectPunct(")");
        stmt->body.push_back(parseStatement());
        return stmt;
    }

    StmtPtr
    parseDoWhile()
    {
        Token t = next(); // do
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::DoWhile);
        stmt->loc = t.loc;
        stmt->body.push_back(parseStatement());
        if (!accept(TokKind::Keyword, "while")) {
            diags_.error(peek().loc, "expected 'while' after do body");
            throw FatalError("MiniC parse error");
        }
        expectPunct("(");
        stmt->cond = parseExpr();
        expectPunct(")");
        expectPunct(";");
        return stmt;
    }

    StmtPtr
    parseFor()
    {
        Token t = next(); // for
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::For);
        stmt->loc = t.loc;
        expectPunct("(");
        if (!peek().isPunct(";")) {
            if (atTypeKeyword()) {
                stmt->initStmt = parseDecl();
            } else {
                auto init = std::make_unique<Stmt>(Stmt::Kind::ExprStmt);
                init->expr = parseExpr();
                expectPunct(";");
                stmt->initStmt = std::move(init);
            }
        } else {
            expectPunct(";");
        }
        if (!peek().isPunct(";"))
            stmt->cond = parseExpr();
        expectPunct(";");
        if (!peek().isPunct(")"))
            stmt->incExpr = parseExpr();
        expectPunct(")");
        stmt->body.push_back(parseStatement());
        return stmt;
    }

    // Expressions ---------------------------------------------------------

    ExprPtr
    parseExpr()
    {
        return parseAssignExpr();
    }

    ExprPtr
    parseAssignExpr()
    {
        ExprPtr lhs = parseTernary();
        const Token &t = peek();
        static const char *assign_ops[] = {"=",  "+=", "-=",
                                           "*=", "/=", "%="};
        for (const char *op : assign_ops) {
            if (t.isPunct(op)) {
                next();
                auto e = std::make_unique<Expr>(Expr::Kind::Assign);
                e->loc = t.loc;
                e->op = op;
                e->children.push_back(std::move(lhs));
                e->children.push_back(parseAssignExpr());
                return e;
            }
        }
        return lhs;
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (peek().isPunct("?")) {
            Token t = next();
            auto e = std::make_unique<Expr>(Expr::Kind::Ternary);
            e->loc = t.loc;
            e->children.push_back(std::move(cond));
            e->children.push_back(parseAssignExpr());
            expectPunct(":");
            e->children.push_back(parseAssignExpr());
            return e;
        }
        return cond;
    }

    int
    precedenceOf(const std::string &op) const
    {
        static const std::map<std::string, int> prec = {
            {"||", 1}, {"&&", 2}, {"|", 3}, {"^", 4}, {"&", 5},
            {"==", 6}, {"!=", 6}, {"<", 7}, {"<=", 7}, {">", 7},
            {">=", 7}, {"<<", 8}, {">>", 8}, {"+", 9}, {"-", 9},
            {"*", 10}, {"/", 10}, {"%", 10},
        };
        auto it = prec.find(op);
        return it == prec.end() ? -1 : it->second;
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            const Token &t = peek();
            if (!t.is(TokKind::Punct))
                break;
            int prec = precedenceOf(t.text);
            if (prec < 0 || prec < min_prec)
                break;
            Token op = next();
            ExprPtr rhs = parseBinary(prec + 1);
            auto e = std::make_unique<Expr>(Expr::Kind::Binary);
            e->loc = op.loc;
            e->op = op.text;
            e->children.push_back(std::move(lhs));
            e->children.push_back(std::move(rhs));
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr
    parseUnary()
    {
        const Token &t = peek();
        if (t.isPunct("-") || t.isPunct("!") || t.isPunct("*") ||
            t.isPunct("~") || t.isPunct("+")) {
            Token op = next();
            auto e = std::make_unique<Expr>(Expr::Kind::Unary);
            e->loc = op.loc;
            e->op = op.text;
            e->children.push_back(parseUnary());
            return e;
        }
        if (t.isPunct("++") || t.isPunct("--")) {
            Token op = next();
            // Lower prefix inc/dec as the matching compound assign.
            auto e = std::make_unique<Expr>(Expr::Kind::Assign);
            e->loc = op.loc;
            e->op = op.text == "++" ? "+=" : "-=";
            e->children.push_back(parseUnary());
            auto one = std::make_unique<Expr>(Expr::Kind::IntLit);
            one->intValue = 1;
            e->children.push_back(std::move(one));
            return e;
        }
        if (t.isPunct("(") && isCastAhead()) {
            next(); // (
            TypeSpec type = parseTypePrefix();
            expectPunct(")");
            auto e = std::make_unique<Expr>(Expr::Kind::Unary);
            e->loc = t.loc;
            e->op = "cast:" + castName(type);
            e->children.push_back(parseUnary());
            return e;
        }
        return parsePostfix();
    }

    bool
    isCastAhead() const
    {
        // "( type" where type is a keyword type.
        const Token &t1 = peek(1);
        return t1.isKeyword("int") || t1.isKeyword("long") ||
               t1.isKeyword("float") || t1.isKeyword("double");
    }

    static std::string
    castName(const TypeSpec &type)
    {
        std::string out;
        switch (type.base) {
          case BaseType::Int: out = "int"; break;
          case BaseType::Long: out = "long"; break;
          case BaseType::Float: out = "float"; break;
          case BaseType::Double: out = "double"; break;
          case BaseType::Void: out = "void"; break;
        }
        for (int i = 0; i < type.pointerDepth; ++i)
            out += "*";
        return out;
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (true) {
            const Token &t = peek();
            if (t.isPunct("[")) {
                next();
                auto idx = std::make_unique<Expr>(Expr::Kind::Index);
                idx->loc = t.loc;
                idx->children.push_back(std::move(e));
                idx->children.push_back(parseExpr());
                expectPunct("]");
                e = std::move(idx);
            } else if (t.isPunct("++") || t.isPunct("--")) {
                Token op = next();
                auto post =
                    std::make_unique<Expr>(Expr::Kind::PostIncDec);
                post->loc = op.loc;
                post->op = op.text;
                post->children.push_back(std::move(e));
                e = std::move(post);
            } else {
                break;
            }
        }
        return e;
    }

    ExprPtr
    parsePrimary()
    {
        Token t = next();
        if (t.is(TokKind::IntLiteral)) {
            auto e = std::make_unique<Expr>(Expr::Kind::IntLit);
            e->loc = t.loc;
            std::string digits = t.text;
            while (!digits.empty() &&
                   (digits.back() == 'l' || digits.back() == 'L' ||
                    digits.back() == 'u' || digits.back() == 'U')) {
                digits.pop_back();
            }
            e->intValue = std::stoll(digits);
            return e;
        }
        if (t.is(TokKind::FloatLiteral)) {
            auto e = std::make_unique<Expr>(Expr::Kind::FloatLit);
            e->loc = t.loc;
            std::string digits = t.text;
            e->isFloat32 = !digits.empty() && (digits.back() == 'f' ||
                                               digits.back() == 'F');
            if (e->isFloat32)
                digits.pop_back();
            e->floatValue = std::stod(digits);
            return e;
        }
        if (t.is(TokKind::Identifier)) {
            if (peek().isPunct("(")) {
                auto call = std::make_unique<Expr>(Expr::Kind::Call);
                call->loc = t.loc;
                call->name = t.text;
                next(); // (
                if (!acceptPunct(")")) {
                    do {
                        call->children.push_back(parseAssignExpr());
                    } while (acceptPunct(","));
                    expectPunct(")");
                }
                return call;
            }
            auto e = std::make_unique<Expr>(Expr::Kind::VarRef);
            e->loc = t.loc;
            e->name = t.text;
            return e;
        }
        if (t.isPunct("(")) {
            ExprPtr e = parseExpr();
            expectPunct(")");
            return e;
        }
        diags_.error(t.loc, "unexpected token '" + t.text + "'");
        throw FatalError("MiniC parse error");
    }

    std::vector<Token> tokens_;
    DiagEngine &diags_;
    size_t pos_ = 0;
};

} // namespace

std::unique_ptr<TranslationUnit>
parseMiniC(const std::string &source, DiagEngine &diags)
{
    std::vector<Token> tokens = lexMiniC(source, diags);
    if (diags.hasErrors())
        return nullptr;
    try {
        Parser parser(std::move(tokens), diags);
        auto unit = parser.parseUnit();
        if (diags.hasErrors())
            return nullptr;
        return unit;
    } catch (const FatalError &) {
        return nullptr;
    }
}

} // namespace repro::frontend
