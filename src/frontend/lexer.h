/**
 * @file
 * Lexer for MiniC, the C subset used to express benchmark kernels.
 */
#ifndef FRONTEND_LEXER_H
#define FRONTEND_LEXER_H

#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace repro::frontend {

/** Token categories of MiniC. */
enum class TokKind
{
    End,
    Identifier,
    IntLiteral,
    FloatLiteral,
    Keyword,
    Punct,
};

/** One lexed token. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    SourceLoc loc;

    bool is(TokKind k) const { return kind == k; }
    bool
    is(TokKind k, const std::string &t) const
    {
        return kind == k && text == t;
    }
    bool isPunct(const std::string &t) const
    {
        return is(TokKind::Punct, t);
    }
    bool isKeyword(const std::string &t) const
    {
        return is(TokKind::Keyword, t);
    }
};

/** Tokenize @p source; reports malformed input to @p diags. */
std::vector<Token> lexMiniC(const std::string &source, DiagEngine &diags);

} // namespace repro::frontend

#endif // FRONTEND_LEXER_H
