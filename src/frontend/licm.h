/**
 * @file
 * Loop-invariant code motion and scalar promotion of memory
 * accumulators.
 *
 * These reproduce the -O2 cleanups the paper's input IR has been
 * through: invariant address computations move to preheaders, and
 * loop-carried memory accumulators (C[i][j] += ...) become phi-form
 * reductions — the shape DotProductLoop matches.
 */
#ifndef FRONTEND_LICM_H
#define FRONTEND_LICM_H

#include "ir/function.h"

namespace repro::frontend {

/**
 * Hoist loop-invariant pure instructions (and, in store/call-free
 * loops, invariant loads that execute on every iteration) into loop
 * preheaders. Returns the number of hoisted instructions.
 */
int hoistLoopInvariants(ir::Function *func);

/**
 * Promote single-store loop accumulators with a loop-invariant
 * address into SSA registers: the in-loop load becomes a phi and the
 * store moves to the loop exit. Requires all other memory accesses in
 * the loop to use provably distinct base pointers. Returns the number
 * of promoted accumulators.
 */
int promoteMemoryAccumulators(ir::Function *func);

/** Run both (plus DCE) to a fixed point, as an -O2 stand-in. */
void optimizeFunction(ir::Function *func);

} // namespace repro::frontend

#endif // FRONTEND_LICM_H
