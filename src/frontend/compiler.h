/**
 * @file
 * One-call MiniC compilation driver: parse, generate IR, remove
 * unreachable code, promote scalars to SSA and clean up.
 */
#ifndef FRONTEND_COMPILER_H
#define FRONTEND_COMPILER_H

#include <string>

#include "ir/function.h"
#include "support/diagnostics.h"

namespace repro::frontend {

/**
 * Compile MiniC @p source into @p module (optimized SSA form).
 * Returns false and fills @p diags on any error.
 */
bool compileMiniC(const std::string &source, ir::Module &module,
                  DiagEngine &diags);

/** Convenience wrapper that throws FatalError on failure. */
void compileMiniCOrDie(const std::string &source, ir::Module &module);

} // namespace repro::frontend

#endif // FRONTEND_COMPILER_H
