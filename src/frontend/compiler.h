/**
 * @file
 * One-call MiniC compilation driver: parse, generate IR, remove
 * unreachable code, promote scalars to SSA and clean up.
 */
#ifndef FRONTEND_COMPILER_H
#define FRONTEND_COMPILER_H

#include <string>

#include "ir/function.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace repro::frontend {

/**
 * Compile MiniC @p source into @p module (optimized SSA form).
 * Returns false and fills @p diags on any error.
 *
 * With @p verify == VerifyMode::Boundaries the dominance-aware IR
 * verifier additionally runs after codegen ("frontend-codegen"),
 * after mem2reg ("frontend-mem2reg") and after the cleanup passes
 * ("frontend-optimize"), throwing InternalError naming the boundary
 * on the first defect — pinpointing which stage broke the module
 * instead of reporting a blurred post-hoc diagnostic. The final
 * diags-based module check always runs regardless of the mode.
 */
bool compileMiniC(const std::string &source, ir::Module &module,
                  DiagEngine &diags,
                  ir::VerifyMode verify = ir::defaultVerifyMode());

/** Convenience wrapper that throws FatalError on failure. */
void compileMiniCOrDie(const std::string &source, ir::Module &module,
                       ir::VerifyMode verify = ir::defaultVerifyMode());

} // namespace repro::frontend

#endif // FRONTEND_COMPILER_H
