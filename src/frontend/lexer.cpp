#include "frontend/lexer.h"

#include <cctype>
#include <set>

namespace repro::frontend {

namespace {

const std::set<std::string> kKeywords = {
    "int", "long", "float", "double", "void", "for", "while", "do",
    "if", "else", "return", "break", "continue", "const",
    "__protect",
};

// Longest first so that ">>" wins over ">".
const char *kPuncts[] = {
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "<<", ">>", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":", ".",
};

} // namespace

std::vector<Token>
lexMiniC(const std::string &source, DiagEngine &diags)
{
    std::vector<Token> tokens;
    size_t pos = 0;
    int line = 1, col = 1;

    auto advance = [&](size_t n) {
        for (size_t i = 0; i < n && pos < source.size(); ++i) {
            if (source[pos] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
            ++pos;
        }
    };

    while (pos < source.size()) {
        char c = source[pos];
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }
        // Comments.
        if (c == '/' && pos + 1 < source.size()) {
            if (source[pos + 1] == '/') {
                while (pos < source.size() && source[pos] != '\n')
                    advance(1);
                continue;
            }
            if (source[pos + 1] == '*') {
                advance(2);
                while (pos + 1 < source.size() &&
                       !(source[pos] == '*' && source[pos + 1] == '/')) {
                    advance(1);
                }
                advance(2);
                continue;
            }
        }
        SourceLoc loc{line, col};
        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos;
            while (pos < source.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(source[pos])) ||
                    source[pos] == '_')) {
                advance(1);
            }
            std::string text = source.substr(start, pos - start);
            TokKind kind = kKeywords.count(text) ? TokKind::Keyword
                                                 : TokKind::Identifier;
            tokens.push_back({kind, text, loc});
            continue;
        }
        // Numbers.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && pos + 1 < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[pos + 1])))) {
            size_t start = pos;
            bool isFloat = false;
            while (pos < source.size()) {
                char d = source[pos];
                if (std::isdigit(static_cast<unsigned char>(d))) {
                    advance(1);
                } else if (d == '.') {
                    isFloat = true;
                    advance(1);
                } else if (d == 'e' || d == 'E') {
                    isFloat = true;
                    advance(1);
                    if (pos < source.size() &&
                        (source[pos] == '+' || source[pos] == '-')) {
                        advance(1);
                    }
                } else if (d == 'f' || d == 'F') {
                    isFloat = true;
                    advance(1);
                    break;
                } else if (d == 'L' || d == 'l' || d == 'u' ||
                           d == 'U') {
                    advance(1);
                } else {
                    break;
                }
            }
            std::string text = source.substr(start, pos - start);
            tokens.push_back({isFloat ? TokKind::FloatLiteral
                                      : TokKind::IntLiteral,
                              text, loc});
            continue;
        }
        // Punctuation.
        bool matched = false;
        for (const char *p : kPuncts) {
            size_t len = std::string(p).size();
            if (source.compare(pos, len, p) == 0) {
                tokens.push_back({TokKind::Punct, p, loc});
                advance(len);
                matched = true;
                break;
            }
        }
        if (!matched) {
            diags.error(loc, std::string("unexpected character '") + c +
                                 "'");
            advance(1);
        }
    }
    tokens.push_back({TokKind::End, "", {line, col}});
    return tokens;
}

} // namespace repro::frontend
