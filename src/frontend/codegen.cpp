#include "frontend/codegen.h"

#include <map>
#include <vector>

#include "ir/irbuilder.h"

namespace repro::frontend {

using ir::BasicBlock;
using ir::CmpPred;
using ir::IRBuilder;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

/** A named entity visible to expressions. */
struct Symbol
{
    Value *address = nullptr; ///< pointer to storage
    TypeSpec ctype;
};

/** Code generator for one translation unit. */
class CodeGen
{
  public:
    CodeGen(const TranslationUnit &unit, ir::Module &module,
            DiagEngine &diags)
        : unit_(unit), module_(module), builder_(module), diags_(diags)
    {}

    bool
    run()
    {
        try {
            declareBuiltins();
            for (const auto &g : unit_.globals) {
                module_.createGlobal(g.name,
                                     irTypeOf(g.type, false));
            }
            // Declare all functions first so calls resolve in any
            // order.
            for (const auto &f : unit_.functions) {
                if (module_.functionByName(f->name))
                    continue;
                std::vector<Type *> params;
                for (const auto &p : f->params)
                    params.push_back(irTypeOf(p.type, true));
                ir::Function *func = module_.createFunction(
                    f->name, irTypeOf(f->returnType, true), params);
                for (size_t i = 0; i < f->params.size(); ++i)
                    func->arg(i)->setName(f->params[i].name);
                if (f->protect) {
                    func->addAttribute(
                        f->protectMode.empty()
                            ? "protect"
                            : "protect:" + f->protectMode);
                }
            }
            for (const auto &f : unit_.functions) {
                if (f->body)
                    genFunction(*f);
            }
        } catch (const FatalError &) {
            return false;
        }
        return !diags_.hasErrors();
    }

  private:
    [[noreturn]] void
    fail(SourceLoc loc, const std::string &msg)
    {
        diags_.error(loc, msg);
        throw FatalError("MiniC codegen error");
    }

    void
    declareBuiltins()
    {
        Type *d = module_.types().doubleTy();
        for (const char *name :
             {"sqrt", "fabs", "exp", "log", "sin", "cos", "floor"}) {
            if (!module_.functionByName(name))
                module_.createFunction(name, d, {d});
        }
        if (!module_.functionByName("pow")) {
            module_.createFunction("pow", d, {d, d});
        }
        if (!module_.functionByName("fmax")) {
            module_.createFunction("fmax", d, {d, d});
            module_.createFunction("fmin", d, {d, d});
        }
    }

    Type *
    scalarType(BaseType base)
    {
        switch (base) {
          case BaseType::Void: return module_.types().voidTy();
          case BaseType::Int: return module_.types().i32Ty();
          case BaseType::Long: return module_.types().i64Ty();
          case BaseType::Float: return module_.types().floatTy();
          case BaseType::Double: return module_.types().doubleTy();
        }
        return module_.types().voidTy();
    }

    /**
     * IR type of a MiniC type. With @p decay, an array with an unsized
     * or sized first dimension becomes a pointer (parameter passing).
     */
    Type *
    irTypeOf(const TypeSpec &spec, bool decay)
    {
        Type *t = scalarType(spec.base);
        for (int i = 0; i < spec.pointerDepth; ++i)
            t = module_.types().pointerTo(t);
        if (spec.dims.empty())
            return t;
        // Build the array from the innermost dimension outwards.
        size_t first = 0;
        if (decay)
            first = 1;
        Type *arr = t;
        for (size_t i = spec.dims.size(); i > first; --i) {
            arr = module_.types().arrayOf(
                arr, static_cast<uint64_t>(spec.dims[i - 1]));
        }
        if (decay)
            return module_.types().pointerTo(arr);
        return arr;
    }

    static TypeSpec
    removeOneIndex(TypeSpec spec)
    {
        if (!spec.dims.empty())
            spec.dims.erase(spec.dims.begin());
        else if (spec.pointerDepth > 0)
            --spec.pointerDepth;
        return spec;
    }

    // Expression C types ---------------------------------------------------

    TypeSpec
    exprCType(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit: {
            TypeSpec t;
            t.base = e.intValue > 0x7fffffffLL ? BaseType::Long
                                               : BaseType::Int;
            return t;
          }
          case Expr::Kind::FloatLit: {
            TypeSpec t;
            t.base = e.isFloat32 ? BaseType::Float : BaseType::Double;
            return t;
          }
          case Expr::Kind::VarRef: {
            Symbol *sym = lookup(e.name);
            if (!sym)
                fail(e.loc, "unknown variable '" + e.name + "'");
            return sym->ctype;
          }
          case Expr::Kind::Index:
            return removeOneIndex(exprCType(*e.children[0]));
          case Expr::Kind::Unary:
            if (e.op == "*")
                return removeOneIndex(exprCType(*e.children[0]));
            if (e.op == "!") {
                TypeSpec t;
                t.base = BaseType::Int;
                return t;
            }
            if (e.op.rfind("cast:", 0) == 0)
                return castTypeOf(e.op);
            return exprCType(*e.children[0]);
          case Expr::Kind::Binary: {
            if (e.op == "&&" || e.op == "||" || e.op == "==" ||
                e.op == "!=" || e.op == "<" || e.op == "<=" ||
                e.op == ">" || e.op == ">=") {
                TypeSpec t;
                t.base = BaseType::Int;
                return t;
            }
            return promote(exprCType(*e.children[0]),
                           exprCType(*e.children[1]));
          }
          case Expr::Kind::Assign:
          case Expr::Kind::PostIncDec:
            return exprCType(*e.children[0]);
          case Expr::Kind::Ternary:
            return promote(exprCType(*e.children[1]),
                           exprCType(*e.children[2]));
          case Expr::Kind::Call: {
            ir::Function *callee = module_.functionByName(e.name);
            TypeSpec t;
            if (!callee) {
                t.base = BaseType::Double;
                return t;
            }
            Type *rt = callee->returnType();
            t.base = baseOfIR(rt);
            return t;
          }
        }
        TypeSpec t;
        return t;
    }

    static BaseType
    baseOfIR(Type *t)
    {
        switch (t->kind()) {
          case Type::Kind::I32: return BaseType::Int;
          case Type::Kind::I64: return BaseType::Long;
          case Type::Kind::Float: return BaseType::Float;
          case Type::Kind::Double: return BaseType::Double;
          default: return BaseType::Void;
        }
    }

    TypeSpec
    castTypeOf(const std::string &op)
    {
        std::string name = op.substr(5);
        TypeSpec t;
        while (!name.empty() && name.back() == '*') {
            ++t.pointerDepth;
            name.pop_back();
        }
        if (name == "int")
            t.base = BaseType::Int;
        else if (name == "long")
            t.base = BaseType::Long;
        else if (name == "float")
            t.base = BaseType::Float;
        else
            t.base = BaseType::Double;
        return t;
    }

    static TypeSpec
    promote(const TypeSpec &a, const TypeSpec &b)
    {
        if (a.isPointerLike())
            return a;
        if (b.isPointerLike())
            return b;
        TypeSpec t;
        auto rank = [](BaseType bt) {
            switch (bt) {
              case BaseType::Int: return 0;
              case BaseType::Long: return 1;
              case BaseType::Float: return 2;
              case BaseType::Double: return 3;
              default: return 0;
            }
        };
        t.base = rank(a.base) >= rank(b.base) ? a.base : b.base;
        return t;
    }

    // Value conversion ------------------------------------------------------

    Value *
    convert(Value *v, Type *to, SourceLoc loc)
    {
        Type *from = v->type();
        if (from == to)
            return v;
        auto &types = module_.types();
        if (from->isInteger() && to->isInteger()) {
            if (from->sizeInBytes() < to->sizeInBytes())
                return builder_.cast(Opcode::SExt, v, to);
            return builder_.cast(Opcode::Trunc, v, to);
        }
        if (from->isInteger() && to->isFloatingPoint())
            return builder_.cast(Opcode::SIToFP, v, to);
        if (from->isFloatingPoint() && to->isInteger())
            return builder_.cast(Opcode::FPToSI, v, to);
        if (from->isFloatingPoint() && to->isFloatingPoint()) {
            if (from == types.floatTy())
                return builder_.cast(Opcode::FPExt, v, to);
            return builder_.cast(Opcode::FPTrunc, v, to);
        }
        if (from->isPointer() && to->isPointer())
            return v; // MiniC pointers are interchangeable addresses
        fail(loc, "cannot convert " + from->str() + " to " + to->str());
    }

    /** Lower @p v to an i1 condition. */
    Value *
    toBool(Value *v, SourceLoc loc)
    {
        if (v->type()->isI1())
            return v;
        if (v->type()->isInteger()) {
            return builder_.icmp(CmpPred::NE, v,
                                 module_.intConst(v->type(), 0));
        }
        if (v->type()->isFloatingPoint()) {
            return builder_.fcmp(CmpPred::NE, v,
                                 module_.fpConst(v->type(), 0.0));
        }
        if (v->type()->isPointer()) {
            return builder_.icmp(
                CmpPred::NE,
                builder_.cast(Opcode::SExt, v,
                              module_.types().i64Ty()),
                builder_.i64(0));
        }
        fail(loc, "cannot use value of type " + v->type()->str() +
                      " as a condition");
    }

    /** Widen an i1 to i32 when used as an arithmetic value. */
    Value *
    fromBool(Value *v)
    {
        if (v->type()->isI1()) {
            return builder_.cast(Opcode::ZExt, v,
                                 module_.types().i32Ty());
        }
        return v;
    }

    // Symbol handling ---------------------------------------------------------

    Symbol *
    lookup(const std::string &name)
    {
        auto it = locals_.find(name);
        if (it != locals_.end())
            return &it->second;
        auto git = globals_.find(name);
        if (git != globals_.end())
            return &git->second;
        return nullptr;
    }

    // Function generation ------------------------------------------------------

    void
    genFunction(const FunctionDecl &decl)
    {
        func_ = module_.functionByName(decl.name);
        locals_.clear();
        breakTargets_.clear();
        continueTargets_.clear();

        BasicBlock *entry = func_->createBlock("entry");
        builder_.setInsertPoint(entry);

        // Globals become symbols on first function (idempotent).
        globals_.clear();
        for (const auto &g : unit_.globals) {
            Symbol sym;
            sym.address = module_.globalByName(g.name);
            sym.ctype = g.type;
            globals_[g.name] = sym;
        }

        // Spill parameters into allocas (promoted again by mem2reg).
        for (size_t i = 0; i < decl.params.size(); ++i) {
            const ParamDecl &p = decl.params[i];
            ir::Argument *arg = func_->arg(i);
            ir::Instruction *slot = builder_.alloca_(
                arg->type(), p.name + ".addr");
            builder_.store(arg, slot);
            Symbol sym;
            sym.address = slot;
            sym.ctype = p.type;
            locals_[p.name] = sym;
        }

        genStmt(*decl.body);

        // Guarantee a terminator on the last block.
        if (!builder_.insertBlock()->terminator()) {
            if (func_->returnType()->isVoid()) {
                builder_.retVoid();
            } else if (func_->returnType()->isFloatingPoint()) {
                builder_.ret(module_.fpConst(func_->returnType(), 0.0));
            } else {
                builder_.ret(module_.intConst(func_->returnType(), 0));
            }
        }
    }

    // Statements ---------------------------------------------------------------

    void
    genStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Block:
            for (const auto &s : stmt.body) {
                if (builder_.insertBlock()->terminator())
                    break; // unreachable code after return/break
                genStmt(*s);
            }
            break;
          case Stmt::Kind::Empty:
            break;
          case Stmt::Kind::Decl: {
            Type *t = irTypeOf(stmt.declType, false);
            ir::Instruction *slot =
                builder_.alloca_(t, stmt.declName + ".addr");
            Symbol sym;
            sym.address = slot;
            sym.ctype = stmt.declType;
            locals_[stmt.declName] = sym;
            if (stmt.init) {
                Value *v = genExpr(*stmt.init);
                builder_.store(convert(v, t, stmt.loc), slot);
            }
            break;
          }
          case Stmt::Kind::ExprStmt:
            genExpr(*stmt.expr);
            break;
          case Stmt::Kind::Return: {
            if (stmt.expr) {
                Value *v = genExpr(*stmt.expr);
                builder_.ret(
                    convert(v, func_->returnType(), stmt.loc));
            } else {
                builder_.retVoid();
            }
            break;
          }
          case Stmt::Kind::If: {
            Value *cond = toBool(genExpr(*stmt.cond), stmt.loc);
            BasicBlock *then_bb =
                func_->createBlock(func_->uniqueName("if.then"));
            BasicBlock *end_bb =
                func_->createBlock(func_->uniqueName("if.end"));
            BasicBlock *else_bb = end_bb;
            if (!stmt.elseBody.empty()) {
                else_bb =
                    func_->createBlock(func_->uniqueName("if.else"));
            }
            builder_.condBr(cond, then_bb, else_bb);
            builder_.setInsertPoint(then_bb);
            for (const auto &s : stmt.body)
                genStmt(*s);
            if (!builder_.insertBlock()->terminator())
                builder_.br(end_bb);
            if (!stmt.elseBody.empty()) {
                builder_.setInsertPoint(else_bb);
                for (const auto &s : stmt.elseBody)
                    genStmt(*s);
                if (!builder_.insertBlock()->terminator())
                    builder_.br(end_bb);
            }
            builder_.setInsertPoint(end_bb);
            break;
          }
          case Stmt::Kind::While: {
            BasicBlock *cond_bb =
                func_->createBlock(func_->uniqueName("while.cond"));
            BasicBlock *body_bb =
                func_->createBlock(func_->uniqueName("while.body"));
            BasicBlock *end_bb =
                func_->createBlock(func_->uniqueName("while.end"));
            builder_.br(cond_bb);
            builder_.setInsertPoint(cond_bb);
            Value *cond = toBool(genExpr(*stmt.cond), stmt.loc);
            builder_.condBr(cond, body_bb, end_bb);
            builder_.setInsertPoint(body_bb);
            breakTargets_.push_back(end_bb);
            continueTargets_.push_back(cond_bb);
            for (const auto &s : stmt.body)
                genStmt(*s);
            breakTargets_.pop_back();
            continueTargets_.pop_back();
            if (!builder_.insertBlock()->terminator())
                builder_.br(cond_bb);
            builder_.setInsertPoint(end_bb);
            break;
          }
          case Stmt::Kind::DoWhile: {
            BasicBlock *body_bb =
                func_->createBlock(func_->uniqueName("do.body"));
            BasicBlock *cond_bb =
                func_->createBlock(func_->uniqueName("do.cond"));
            BasicBlock *end_bb =
                func_->createBlock(func_->uniqueName("do.end"));
            builder_.br(body_bb);
            builder_.setInsertPoint(body_bb);
            breakTargets_.push_back(end_bb);
            continueTargets_.push_back(cond_bb);
            for (const auto &s : stmt.body)
                genStmt(*s);
            breakTargets_.pop_back();
            continueTargets_.pop_back();
            if (!builder_.insertBlock()->terminator())
                builder_.br(cond_bb);
            builder_.setInsertPoint(cond_bb);
            Value *cond = toBool(genExpr(*stmt.cond), stmt.loc);
            builder_.condBr(cond, body_bb, end_bb);
            builder_.setInsertPoint(end_bb);
            break;
          }
          case Stmt::Kind::For: {
            if (stmt.initStmt)
                genStmt(*stmt.initStmt);
            BasicBlock *cond_bb =
                func_->createBlock(func_->uniqueName("for.cond"));
            BasicBlock *body_bb =
                func_->createBlock(func_->uniqueName("for.body"));
            BasicBlock *inc_bb =
                func_->createBlock(func_->uniqueName("for.inc"));
            BasicBlock *end_bb =
                func_->createBlock(func_->uniqueName("for.end"));
            builder_.br(cond_bb);
            builder_.setInsertPoint(cond_bb);
            if (stmt.cond) {
                Value *cond = toBool(genExpr(*stmt.cond), stmt.loc);
                builder_.condBr(cond, body_bb, end_bb);
            } else {
                builder_.br(body_bb);
            }
            builder_.setInsertPoint(body_bb);
            breakTargets_.push_back(end_bb);
            continueTargets_.push_back(inc_bb);
            for (const auto &s : stmt.body)
                genStmt(*s);
            breakTargets_.pop_back();
            continueTargets_.pop_back();
            if (!builder_.insertBlock()->terminator())
                builder_.br(inc_bb);
            builder_.setInsertPoint(inc_bb);
            if (stmt.incExpr)
                genExpr(*stmt.incExpr);
            builder_.br(cond_bb);
            builder_.setInsertPoint(end_bb);
            break;
          }
          case Stmt::Kind::Break:
            if (breakTargets_.empty())
                fail(stmt.loc, "break outside of loop");
            builder_.br(breakTargets_.back());
            break;
          case Stmt::Kind::Continue:
            if (continueTargets_.empty())
                fail(stmt.loc, "continue outside of loop");
            builder_.br(continueTargets_.back());
            break;
        }
    }

    // Expressions ---------------------------------------------------------------

    /** Address of an lvalue expression. */
    Value *
    genLValue(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::VarRef: {
            Symbol *sym = lookup(e.name);
            if (!sym)
                fail(e.loc, "unknown variable '" + e.name + "'");
            return sym->address;
          }
          case Expr::Kind::Index: {
            const Expr &base = *e.children[0];
            TypeSpec base_ctype = exprCType(base);
            Value *idx = genExpr(*e.children[1]);
            idx = fromBool(idx);
            if (idx->type() == module_.types().i32Ty()) {
                idx = builder_.cast(Opcode::SExt, idx,
                                    module_.types().i64Ty());
            }
            if (base_ctype.isArray()) {
                Value *addr = genLValue(base);
                return builder_.gep(addr, {builder_.i64(0), idx});
            }
            Value *ptr = genExpr(base);
            return builder_.gep(ptr, {idx});
          }
          case Expr::Kind::Unary:
            if (e.op == "*")
                return genExpr(*e.children[0]);
            fail(e.loc, "expression is not an lvalue");
          default:
            fail(e.loc, "expression is not an lvalue");
        }
    }

    /** Rvalue of an expression. */
    Value *
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit: {
            Type *t = e.intValue > 0x7fffffffLL
                          ? module_.types().i64Ty()
                          : module_.types().i32Ty();
            return module_.intConst(t, e.intValue);
          }
          case Expr::Kind::FloatLit: {
            Type *t = e.isFloat32 ? module_.types().floatTy()
                                  : module_.types().doubleTy();
            return module_.fpConst(t, e.floatValue);
          }
          case Expr::Kind::VarRef: {
            Symbol *sym = lookup(e.name);
            if (!sym)
                fail(e.loc, "unknown variable '" + e.name + "'");
            if (sym->ctype.isArray()) {
                // Array-to-pointer decay.
                return builder_.gep(sym->address,
                                    {builder_.i64(0), builder_.i64(0)});
            }
            return builder_.load(sym->address, e.name);
          }
          case Expr::Kind::Index: {
            TypeSpec ctype = exprCType(e);
            Value *addr = genLValue(e);
            if (ctype.isArray()) {
                // Indexing a multi-dim array partially: decay again.
                return builder_.gep(addr,
                                    {builder_.i64(0), builder_.i64(0)});
            }
            return builder_.load(addr);
          }
          case Expr::Kind::Unary:
            return genUnary(e);
          case Expr::Kind::Binary:
            return genBinary(e);
          case Expr::Kind::Assign:
            return genAssign(e);
          case Expr::Kind::PostIncDec: {
            Value *addr = genLValue(*e.children[0]);
            Value *old = builder_.load(addr);
            Value *one =
                old->type()->isFloatingPoint()
                    ? static_cast<Value *>(
                          module_.fpConst(old->type(), 1.0))
                    : module_.intConst(old->type(), 1);
            Opcode op;
            if (old->type()->isFloatingPoint()) {
                op = e.op == "++" ? Opcode::FAdd : Opcode::FSub;
            } else {
                op = e.op == "++" ? Opcode::Add : Opcode::Sub;
            }
            builder_.store(builder_.binary(op, old, one), addr);
            return old;
          }
          case Expr::Kind::Ternary: {
            // MiniC evaluates both arms and selects; kernels written
            // in MiniC keep ternary arms side-effect free.
            Value *cond = toBool(genExpr(*e.children[0]), e.loc);
            Value *a = genExpr(*e.children[1]);
            Value *b = genExpr(*e.children[2]);
            Type *t = irTypeOf(exprCType(e), true);
            a = convert(fromBool(a), t, e.loc);
            b = convert(fromBool(b), t, e.loc);
            return builder_.select(cond, a, b);
          }
          case Expr::Kind::Call:
            return genCall(e);
        }
        fail(e.loc, "unsupported expression");
    }

    Value *
    genUnary(const Expr &e)
    {
        if (e.op == "*") {
            Value *ptr = genExpr(*e.children[0]);
            return builder_.load(ptr);
        }
        if (e.op == "!") {
            Value *v = toBool(genExpr(*e.children[0]), e.loc);
            return builder_.icmp(CmpPred::EQ, v, builder_.i1(false));
        }
        if (e.op.rfind("cast:", 0) == 0) {
            Value *v = fromBool(genExpr(*e.children[0]));
            TypeSpec target = castTypeOf(e.op);
            if (target.pointerDepth > 0)
                return v;
            return convert(v, irTypeOf(target, true), e.loc);
        }
        if (e.op == "+")
            return genExpr(*e.children[0]);
        if (e.op == "-") {
            Value *v = fromBool(genExpr(*e.children[0]));
            if (v->type()->isFloatingPoint()) {
                return builder_.fsub(module_.fpConst(v->type(), 0.0),
                                     v);
            }
            return builder_.sub(module_.intConst(v->type(), 0), v);
        }
        if (e.op == "~") {
            Value *v = fromBool(genExpr(*e.children[0]));
            return builder_.binary(Opcode::Xor, v,
                                   module_.intConst(v->type(), -1));
        }
        fail(e.loc, "unsupported unary operator '" + e.op + "'");
    }

    Value *
    genBinary(const Expr &e)
    {
        if (e.op == "&&" || e.op == "||")
            return genLogical(e);

        Value *lhs = fromBool(genExpr(*e.children[0]));
        Value *rhs = fromBool(genExpr(*e.children[1]));

        // Pointer arithmetic: p + i lowers to gep.
        if (lhs->type()->isPointer() && rhs->type()->isInteger() &&
            (e.op == "+" || e.op == "-")) {
            if (rhs->type() == module_.types().i32Ty()) {
                rhs = builder_.cast(Opcode::SExt, rhs,
                                    module_.types().i64Ty());
            }
            if (e.op == "-") {
                rhs = builder_.sub(builder_.i64(0), rhs);
            }
            return builder_.gep(lhs, {rhs});
        }

        Type *common = promoteIR(lhs->type(), rhs->type());
        lhs = convert(lhs, common, e.loc);
        rhs = convert(rhs, common, e.loc);

        bool is_fp = common->isFloatingPoint();
        if (e.op == "==" || e.op == "!=" || e.op == "<" ||
            e.op == "<=" || e.op == ">" || e.op == ">=") {
            CmpPred pred;
            if (e.op == "==")
                pred = CmpPred::EQ;
            else if (e.op == "!=")
                pred = CmpPred::NE;
            else if (e.op == "<")
                pred = CmpPred::LT;
            else if (e.op == "<=")
                pred = CmpPred::LE;
            else if (e.op == ">")
                pred = CmpPred::GT;
            else
                pred = CmpPred::GE;
            return is_fp ? builder_.fcmp(pred, lhs, rhs)
                         : builder_.icmp(pred, lhs, rhs);
        }

        Opcode op;
        if (e.op == "+")
            op = is_fp ? Opcode::FAdd : Opcode::Add;
        else if (e.op == "-")
            op = is_fp ? Opcode::FSub : Opcode::Sub;
        else if (e.op == "*")
            op = is_fp ? Opcode::FMul : Opcode::Mul;
        else if (e.op == "/")
            op = is_fp ? Opcode::FDiv : Opcode::SDiv;
        else if (e.op == "%")
            op = Opcode::SRem;
        else if (e.op == "&")
            op = Opcode::And;
        else if (e.op == "|")
            op = Opcode::Or;
        else if (e.op == "^")
            op = Opcode::Xor;
        else if (e.op == "<<")
            op = Opcode::Shl;
        else if (e.op == ">>")
            op = Opcode::AShr;
        else
            fail(e.loc, "unsupported binary operator '" + e.op + "'");
        if (!is_fp && common->isI1()) {
            lhs = convert(lhs, module_.types().i32Ty(), e.loc);
            rhs = convert(rhs, module_.types().i32Ty(), e.loc);
        }
        return builder_.binary(op, lhs, rhs);
    }

    Type *
    promoteIR(Type *a, Type *b)
    {
        auto rank = [this](Type *t) {
            if (t == module_.types().doubleTy())
                return 5;
            if (t == module_.types().floatTy())
                return 4;
            if (t == module_.types().i64Ty())
                return 3;
            if (t == module_.types().i32Ty())
                return 2;
            return 1;
        };
        return rank(a) >= rank(b) ? a : b;
    }

    Value *
    genLogical(const Expr &e)
    {
        // Short circuit with control flow, merged through a phi.
        BasicBlock *rhs_bb =
            func_->createBlock(func_->uniqueName("logic.rhs"));
        BasicBlock *end_bb =
            func_->createBlock(func_->uniqueName("logic.end"));
        Value *lhs = toBool(genExpr(*e.children[0]), e.loc);
        BasicBlock *lhs_end = builder_.insertBlock();
        if (e.op == "&&")
            builder_.condBr(lhs, rhs_bb, end_bb);
        else
            builder_.condBr(lhs, end_bb, rhs_bb);
        builder_.setInsertPoint(rhs_bb);
        Value *rhs = toBool(genExpr(*e.children[1]), e.loc);
        BasicBlock *rhs_end = builder_.insertBlock();
        builder_.br(end_bb);
        builder_.setInsertPoint(end_bb);
        ir::Instruction *phi = builder_.phi(module_.types().i1Ty());
        phi->addIncoming(builder_.i1(e.op == "||"), lhs_end);
        phi->addIncoming(rhs, rhs_end);
        return phi;
    }

    Value *
    genAssign(const Expr &e)
    {
        const Expr &lhs = *e.children[0];
        Value *addr = genLValue(lhs);
        Type *elem = addr->type()->element();
        Value *rhs = fromBool(genExpr(*e.children[1]));
        Value *result;
        if (e.op == "=") {
            result = convert(rhs, elem, e.loc);
        } else {
            Value *old = builder_.load(addr);
            Type *common = promoteIR(old->type(), rhs->type());
            Value *a = convert(old, common, e.loc);
            Value *b = convert(rhs, common, e.loc);
            bool is_fp = common->isFloatingPoint();
            Opcode op;
            if (e.op == "+=")
                op = is_fp ? Opcode::FAdd : Opcode::Add;
            else if (e.op == "-=")
                op = is_fp ? Opcode::FSub : Opcode::Sub;
            else if (e.op == "*=")
                op = is_fp ? Opcode::FMul : Opcode::Mul;
            else if (e.op == "/=")
                op = is_fp ? Opcode::FDiv : Opcode::SDiv;
            else if (e.op == "%=")
                op = Opcode::SRem;
            else
                fail(e.loc, "unsupported assignment '" + e.op + "'");
            result = convert(builder_.binary(op, a, b), elem, e.loc);
        }
        builder_.store(result, addr);
        return result;
    }

    Value *
    genCall(const Expr &e)
    {
        ir::Function *callee = module_.functionByName(e.name);
        if (!callee) {
            fail(e.loc, "call to unknown function '" + e.name + "'");
        }
        const auto &params = callee->functionType()->params();
        if (params.size() != e.children.size()) {
            fail(e.loc, "wrong number of arguments to '" + e.name +
                            "'");
        }
        std::vector<Value *> args;
        for (size_t i = 0; i < params.size(); ++i) {
            Value *v = fromBool(genExpr(*e.children[i]));
            args.push_back(convert(v, params[i], e.loc));
        }
        return builder_.call(callee, args);
    }

    const TranslationUnit &unit_;
    ir::Module &module_;
    IRBuilder builder_;
    DiagEngine &diags_;

    ir::Function *func_ = nullptr;
    std::map<std::string, Symbol> locals_;
    std::map<std::string, Symbol> globals_;
    std::vector<BasicBlock *> breakTargets_;
    std::vector<BasicBlock *> continueTargets_;
};

} // namespace

bool
generateIR(const TranslationUnit &unit, ir::Module &module,
           DiagEngine &diags)
{
    CodeGen gen(unit, module, diags);
    return gen.run();
}

} // namespace repro::frontend
