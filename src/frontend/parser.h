/**
 * @file
 * Recursive-descent parser for MiniC.
 */
#ifndef FRONTEND_PARSER_H
#define FRONTEND_PARSER_H

#include <memory>

#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace repro::frontend {

/**
 * Parse @p source into a TranslationUnit. Returns null and fills
 * @p diags when the program is malformed.
 */
std::unique_ptr<TranslationUnit> parseMiniC(const std::string &source,
                                            DiagEngine &diags);

} // namespace repro::frontend

#endif // FRONTEND_PARSER_H
