/**
 * @file
 * Promotion of scalar allocas to SSA registers (mem2reg).
 *
 * Classic SSA construction: phi placement on iterated dominance
 * frontiers followed by a dominator-tree renaming walk. After this
 * pass, MiniC loops have the canonical phi/icmp/br shape that the IDL
 * idiom descriptions match against (compare Figure 4 of the paper).
 */
#ifndef FRONTEND_MEM2REG_H
#define FRONTEND_MEM2REG_H

#include "ir/function.h"

namespace repro::frontend {

/** Promote every promotable alloca in @p func. Returns the count. */
int promoteAllocas(ir::Function *func);

/** Run promoteAllocas on every function of @p module. */
void promoteModule(ir::Module &module);

} // namespace repro::frontend

#endif // FRONTEND_MEM2REG_H
