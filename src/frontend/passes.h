/**
 * @file
 * Cleanup passes run after codegen: unreachable-block removal and
 * aggressive dead code elimination. Together with mem2reg they yield
 * the "optimized LLVM IR" the paper's detection operates on.
 */
#ifndef FRONTEND_PASSES_H
#define FRONTEND_PASSES_H

#include "ir/function.h"

namespace repro::frontend {

/**
 * Delete blocks not reachable from the entry, fixing up phi nodes of
 * surviving blocks. Returns the number of removed blocks.
 */
int removeUnreachableBlocks(ir::Function *func);

/**
 * Aggressive DCE: keep only instructions with observable effects
 * (stores, calls, terminators, returns) and everything they
 * transitively use; delete the rest, including dead phi cycles.
 * Returns the number of removed instructions.
 */
int aggressiveDCE(ir::Function *func);

/** Run both passes over every function. */
void cleanupModule(ir::Module &module);

} // namespace repro::frontend

#endif // FRONTEND_PASSES_H
