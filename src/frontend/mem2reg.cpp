#include "frontend/mem2reg.h"

#include <map>
#include <set>
#include <vector>

#include "analysis/dominators.h"
#include "support/diagnostics.h"

namespace repro::frontend {

using analysis::DomTree;
using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

namespace {

/** True if every use of @p alloca is a direct scalar load or store. */
bool
isPromotable(Instruction *alloca)
{
    if (alloca->accessType()->isArray())
        return false;
    for (Instruction *user : alloca->users()) {
        if (user->is(Opcode::Load))
            continue;
        if (user->is(Opcode::Store) && user->operand(1) == alloca &&
            user->operand(0) != alloca) {
            continue;
        }
        return false;
    }
    return true;
}

Value *
zeroFor(ir::Module &module, ir::Type *type)
{
    if (type->isFloatingPoint())
        return module.fpConst(type, 0.0);
    return module.intConst(type, 0);
}

/** Promotes one function's allocas. */
class Promoter
{
  public:
    explicit Promoter(Function *func)
        : func_(func), dom_(func, false)
    {
        for (const auto &bb : func->blocks()) {
            BasicBlock *d = dom_.idom(bb.get());
            if (d)
                domChildren_[d].push_back(bb.get());
        }
    }

    int
    run()
    {
        std::vector<Instruction *> allocas;
        for (const auto &bb : func_->blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->is(Opcode::Alloca) &&
                    isPromotable(inst.get())) {
                    allocas.push_back(inst.get());
                }
            }
        }
        if (allocas.empty())
            return 0;

        for (Instruction *a : allocas)
            placePhis(a);

        std::map<Instruction *, Value *> incoming;
        for (Instruction *a : allocas) {
            incoming[a] = zeroFor(*func_->parentModule(),
                                  a->accessType());
        }
        rename(func_->entry(), incoming);

        // Delete the dead stores, loads and allocas.
        for (Instruction *inst : toErase_)
            inst->dropOperands();
        for (Instruction *inst : toErase_)
            inst->eraseFromParent();
        for (Instruction *a : allocas) {
            reproAssert(a->unused(), "mem2reg: alloca still used");
            a->eraseFromParent();
        }
        return static_cast<int>(allocas.size());
    }

  private:
    void
    placePhis(Instruction *alloca)
    {
        // Blocks containing a store to this alloca.
        std::vector<BasicBlock *> work;
        for (Instruction *user : alloca->users()) {
            if (user->is(Opcode::Store))
                work.push_back(user->parent());
        }
        std::set<BasicBlock *> has_phi;
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            for (BasicBlock *fr : dom_.frontier(bb)) {
                if (!has_phi.insert(fr).second)
                    continue;
                auto phi = std::make_unique<Instruction>(
                    Opcode::Phi, alloca->accessType(),
                    func_->uniqueName(alloca->name() + ".phi"));
                Instruction *p = fr->insert(0, std::move(phi));
                phiFor_[{fr, alloca}] = p;
                work.push_back(fr);
            }
        }
    }

    void
    rename(BasicBlock *bb, std::map<Instruction *, Value *> incoming)
    {
        // Phis placed in this block define new values first.
        for (auto &[key, phi] : phiFor_) {
            if (key.first == bb)
                incoming[key.second] = phi;
        }
        for (const auto &inst_ptr : bb->insts()) {
            Instruction *inst = inst_ptr.get();
            if (inst->is(Opcode::Load)) {
                Value *addr = inst->operand(0);
                if (addr->isInstruction()) {
                    auto *a = static_cast<Instruction *>(addr);
                    auto it = incoming.find(a);
                    if (it != incoming.end()) {
                        inst->replaceAllUsesWith(it->second);
                        toErase_.push_back(inst);
                    }
                }
            } else if (inst->is(Opcode::Store)) {
                Value *addr = inst->operand(1);
                if (addr->isInstruction()) {
                    auto *a = static_cast<Instruction *>(addr);
                    auto it = incoming.find(a);
                    if (it != incoming.end()) {
                        it->second = inst->operand(0);
                        toErase_.push_back(inst);
                    }
                }
            }
        }
        // Feed phi nodes of successors.
        for (BasicBlock *succ : bb->successors()) {
            for (auto &[key, phi] : phiFor_) {
                if (key.first != succ)
                    continue;
                auto it = incoming.find(key.second);
                if (it != incoming.end())
                    phi->addIncoming(it->second, bb);
            }
        }
        // Recurse over dominator tree children.
        auto cit = domChildren_.find(bb);
        if (cit != domChildren_.end()) {
            for (BasicBlock *child : cit->second)
                rename(child, incoming);
        }
    }

    Function *func_;
    DomTree dom_;
    std::map<BasicBlock *, std::vector<BasicBlock *>> domChildren_;
    std::map<std::pair<BasicBlock *, Instruction *>, Instruction *>
        phiFor_;
    std::vector<Instruction *> toErase_;
};

} // namespace

int
promoteAllocas(Function *func)
{
    if (func->isDeclaration())
        return 0;
    Promoter promoter(func);
    return promoter.run();
}

void
promoteModule(ir::Module &module)
{
    for (const auto &f : module.functions())
        promoteAllocas(f.get());
}

} // namespace repro::frontend
