#include "driver/match_cache.h"

#include <cstring>
#include <map>
#include <set>
#include <unordered_map>

#include "ir/function.h"
#include "ir/instruction.h"

namespace repro::driver {

MatchCache::MatchCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const CachedMatches>
MatchCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
        return nullptr;
    // Touch: move to the MRU front.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
MatchCache::insert(const CacheKey &key, CachedMatches value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(key, std::move(value));
    ++counters_.insertions;
    evictOverCapacityLocked();
}

void
MatchCache::restore(const CacheKey &key, CachedMatches value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(key, std::move(value));
    evictOverCapacityLocked();
}

void
MatchCache::insertLocked(const CacheKey &key, CachedMatches value)
{
    auto entry = std::make_shared<CachedMatches>(std::move(value));
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(entry);
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.emplace_front(key, std::move(entry));
        index_[key] = lru_.begin();
    }
}

std::vector<std::pair<CacheKey, std::shared_ptr<const CachedMatches>>>
MatchCache::entriesMruFirst() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<CacheKey, std::shared_ptr<const CachedMatches>>>
        out;
    out.reserve(lru_.size());
    for (const auto &[key, entry] : lru_)
        out.emplace_back(key, entry);
    return out;
}

void
MatchCache::depositAnalyses(
    const CacheKey &key,
    std::shared_ptr<analysis::FunctionAnalyses> analyses,
    const ir::Function *owner, uint64_t epoch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
        return;
    // Copy-on-write: concurrent readers may hold the old entry.
    auto updated =
        std::make_shared<CachedMatches>(*it->second->second);
    updated->analyses = std::move(analyses);
    updated->analysesOwner = owner;
    updated->analysesEpoch = epoch;
    it->second->second = std::move(updated);
}

std::shared_ptr<analysis::FunctionAnalyses>
MatchCache::analysesFor(const CacheKey &key, const ir::Function *owner,
                        uint64_t epoch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
        return nullptr;
    const CachedMatches &entry = *it->second->second;
    // `analysesOwner` is compared, never dereferenced: it may point
    // at a function of a module destroyed long ago. The epoch check
    // rejects address-recycling false positives — a new function at
    // the old address belongs to a newer driver epoch.
    if (entry.analysesOwner != owner || entry.analysesEpoch != epoch)
        return nullptr;
    return entry.analyses;
}

void
MatchCache::countHit()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.hits;
}

void
MatchCache::countMiss()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
}

void
MatchCache::setCapacity(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    evictOverCapacityLocked();
}

size_t
MatchCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

size_t
MatchCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

CacheCounters
MatchCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
MatchCache::resetCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = CacheCounters{};
}

void
MatchCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.evictions += lru_.size();
    lru_.clear();
    index_.clear();
}

void
MatchCache::evictOverCapacityLocked()
{
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++counters_.evictions;
    }
}

namespace {

/** Constant identity that survives module boundaries. */
struct ConstKey
{
    std::string type;
    bool isFP = false;
    int64_t bits = 0;

    bool
    operator<(const ConstKey &o) const
    {
        if (type != o.type)
            return type < o.type;
        if (isFP != o.isFP)
            return isFP < o.isFP;
        return bits < o.bits;
    }
};

int64_t
constantBits(const ir::Constant *c)
{
    if (!c->isFP())
        return c->intValue();
    int64_t bits;
    double d = c->fpValue();
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

StructuralSignature
MatchCache::signatureOf(const ir::Function *func)
{
    StructuralSignature sig;
    sig.numArgs = static_cast<uint32_t>(func->numArgs());
    for (const auto &bb : func->blocks()) {
        ++sig.numBlocks;
        sig.numInsts += static_cast<uint32_t>(bb->insts().size());
    }
    return sig;
}

bool
MatchCache::capture(const std::vector<idioms::IdiomMatch> &matches,
                    const ir::Function *func,
                    std::vector<PortableMatch> *out)
{
    // Positional identity of every locally defined value, mirroring
    // the walk of Function::contentHash().
    std::unordered_map<const ir::Value *, uint32_t> local;
    uint32_t next = 0;
    uint32_t numArgs = static_cast<uint32_t>(func->numArgs());
    for (const auto &a : func->args())
        local.emplace(a.get(), next++);
    for (const auto &bb : func->blocks()) {
        for (const auto &inst : bb->insts())
            local.emplace(inst.get(), next++);
    }

    out->clear();
    out->reserve(matches.size());
    for (const auto &match : matches) {
        PortableMatch pm;
        pm.idiom = match.idiom;
        pm.cls = match.cls;
        pm.bindings.reserve(match.solution.bindings.size());
        for (const auto &[name, value] : match.solution.bindings) {
            PortableValue pv;
            auto it = local.find(value);
            if (it != local.end()) {
                if (it->second < numArgs) {
                    pv.kind = PortableValue::Kind::Arg;
                    pv.index = it->second;
                } else {
                    pv.kind = PortableValue::Kind::Inst;
                    pv.index = it->second - numArgs;
                }
            } else if (value->isConstant()) {
                const auto *c =
                    static_cast<const ir::Constant *>(value);
                pv.kind = c->isFP() ? PortableValue::Kind::FPConst
                                    : PortableValue::Kind::IntConst;
                pv.bits = constantBits(c);
                pv.text = c->type()->str();
            } else if (value->isGlobal()) {
                pv.kind = PortableValue::Kind::Global;
                pv.text = value->name();
            } else if (value->kind() == ir::ValueKind::FunctionRef) {
                pv.kind = PortableValue::Kind::Func;
                pv.text = value->name();
            } else {
                // A value of another function: no portable identity.
                return false;
            }
            pm.bindings.emplace_back(name, std::move(pv));
        }
        out->push_back(std::move(pm));
    }
    return true;
}

bool
MatchCache::reanchor(const std::vector<PortableMatch> &matches,
                     ir::Function *func,
                     std::vector<idioms::IdiomMatch> *out)
{
    ir::Module *module = func->parentModule();
    if (!module)
        return false;

    // The solve path numbers the function's values while building the
    // CandidateIndex (in Function::renumber() order). Replay skips
    // that, so number here — otherwise the replayed solutions print
    // "%-1" handles and warm fingerprints diverge from cold ones.
    // Like CandidateIndex (and unlike Function::renumber), only
    // function-owned values are written: module-interned constants
    // and globals are shared across functions, their ids are never
    // read, and writing them here would race between parallel
    // replay/solve workers. They still advance the counter so the
    // dense sequence matches the solve path's exactly.
    {
        int next = 0;
        std::set<const ir::Value *> seenShared;
        for (size_t i = 0; i < func->numArgs(); ++i)
            func->arg(i)->setId(next++);
        for (const auto &bb : func->blocks()) {
            for (const auto &inst : bb->insts()) {
                inst->setId(next++);
                for (const ir::Value *op : inst->operands()) {
                    if ((op->isConstant() || op->isGlobal()) &&
                        seenShared.insert(op).second)
                        ++next;
                }
            }
        }
    }

    // Layout-order value tables of the target function, plus the
    // constants it actually references (interned, hence unique per
    // (type, bits) within the module).
    std::vector<const ir::Value *> insts;
    std::map<ConstKey, const ir::Value *> consts;
    for (const auto &bb : func->blocks()) {
        for (const auto &inst : bb->insts()) {
            insts.push_back(inst.get());
            for (const ir::Value *op : inst->operands()) {
                if (!op->isConstant())
                    continue;
                const auto *c =
                    static_cast<const ir::Constant *>(op);
                consts.emplace(
                    ConstKey{c->type()->str(), c->isFP(),
                             constantBits(c)},
                    c);
            }
        }
    }

    out->clear();
    out->reserve(matches.size());
    for (const auto &pm : matches) {
        idioms::IdiomMatch match;
        match.idiom = pm.idiom;
        match.cls = pm.cls;
        match.function = func;
        for (const auto &[name, pv] : pm.bindings) {
            const ir::Value *value = nullptr;
            switch (pv.kind) {
              case PortableValue::Kind::Arg:
                if (pv.index < func->numArgs())
                    value = func->arg(pv.index);
                break;
              case PortableValue::Kind::Inst:
                if (pv.index < insts.size())
                    value = insts[pv.index];
                break;
              case PortableValue::Kind::IntConst:
              case PortableValue::Kind::FPConst: {
                auto it = consts.find(ConstKey{
                    pv.text,
                    pv.kind == PortableValue::Kind::FPConst,
                    pv.bits});
                if (it != consts.end())
                    value = it->second;
                break;
              }
              case PortableValue::Kind::Global:
                value = module->globalByName(pv.text);
                break;
              case PortableValue::Kind::Func:
                value = module->functionByName(pv.text);
                break;
            }
            if (!value)
                return false;
            match.solution.bindings.emplace(name, value);
        }
        out->push_back(std::move(match));
    }
    return true;
}

} // namespace repro::driver
