/**
 * @file
 * Crash-safe persistence of the MatchCache: the store behind warm
 * daemon restarts.
 *
 * Cache entries are already module-independent (PortableMatch
 * positions, constant bit patterns, global/function names — see
 * driver/match_cache.h), so they serialize without any live IR. A
 * snapshot is a single file:
 *
 *   header:  magic "RMCS" | u32 version | u64 idiomSetHash
 *          | u64 recordCount | u64 fnv1a64(preceding 24 bytes)
 *   record:  u32 payloadBytes | u64 fnv1a64(payload) | payload
 *   payload: key (contentHash, idiomSetHash), StructuralSignature,
 *            SolveStats, and the portable matches — all fixed-width
 *            little-endian integers and u32-length-prefixed strings.
 *
 * Records are written MRU-first and restored in reverse, so a
 * restarted daemon resumes with the exact recency order it crashed
 * with (and capacity-bounded loads keep the hottest entries).
 *
 * Durability is crash-only: save() writes a temp file in the target
 * directory, fsyncs it, atomically renames it over the destination
 * and fsyncs the directory — a kill -9 at ANY point leaves either the
 * previous committed snapshot or the new one, never a torn file.
 *
 * Recovery is strict-validation, never-trusting: every record is
 * length-prefixed and checksummed, every count and string length is
 * bounds-checked against the remaining payload, and enums are
 * range-checked. A bit-flipped or truncated record is skipped (the
 * length prefix resynchronizes to the next record); implausible
 * framing, a version skew, a foreign idiom-set hash or a corrupt
 * header degrade to a cold start. load() never throws and never
 * crashes — and a wrong-but-well-formed record can still never replay
 * wrongly, because MatchCache replay re-checks the StructuralSignature
 * and re-anchors by membership on every hit.
 */
#ifndef DRIVER_CACHE_SNAPSHOT_H
#define DRIVER_CACHE_SNAPSHOT_H

#include <cstdint>
#include <string>

#include "driver/match_cache.h"

namespace repro::driver {

/** Snapshot format revision (bump on any layout change). */
constexpr uint32_t kSnapshotVersion = 1;

/** Hard bound on one serialized record (corruption backstop). */
constexpr size_t kMaxSnapshotRecordBytes = 4u * 1024 * 1024;

/** Hard bound on a whole snapshot file (corruption backstop). */
constexpr uint64_t kMaxSnapshotBytes = 256ull * 1024 * 1024;

/** Outcome of one snapshot save or load, loggable by the daemon. */
struct SnapshotResult
{
    /**
     * save: the file was durably committed (temp + fsync + rename).
     * load: a committed snapshot was recovered, fully or partially
     * (false = cold start: file missing, header corrupt, version
     * skew, or idiom set changed — `detail` says which).
     */
    bool ok = false;
    /** Records written / restored. */
    size_t records = 0;
    /** load only: corrupt/truncated records skipped with a reason. */
    size_t skipped = 0;
    /** Snapshot file size in bytes (0 when missing). */
    uint64_t bytes = 0;
    /** Human-readable reason whenever something was not clean. */
    std::string detail;
};

/**
 * Serialize every cache entry to @p path atomically. Entries whose
 * key does not match the current idioms::idiomSetHash() are written
 * anyway (the header records the hash actually embedded in the keys —
 * in practice all entries share it). Never throws; failures land in
 * the result's `detail`.
 */
SnapshotResult saveSnapshot(const MatchCache &cache,
                            const std::string &path);

/**
 * Restore entries from @p path into @p cache (respecting its current
 * capacity; LRU order preserved). Strict validation per the file
 * contract above: skip what is provably damaged, cold-start when the
 * frame itself cannot be trusted. Never throws.
 */
SnapshotResult loadSnapshot(MatchCache &cache,
                            const std::string &path);

} // namespace repro::driver

#endif // DRIVER_CACHE_SNAPSHOT_H
