/**
 * @file
 * Batched end-to-end idiom-matching driver.
 *
 * Every evaluation binary of the paper (Tables 1-3, Figures 16-19)
 * needs the same pipeline: compile MiniC to optimized SSA, run the
 * idiom library's constraint solver over every function, and
 * optionally apply the idiom-to-API transformations. The
 * MatchingDriver packages that pipeline behind one entry point,
 * caching the per-function analyses (dominators, loops, CFG,
 * candidate indices) so a batch over N idioms builds them once per
 * function instead of once per (function, idiom) pair, and
 * aggregating SolveStats so callers get the paper's search-effort
 * numbers without threading counters through their own loops.
 *
 * Matching is embarrassingly parallel across functions: solving
 * writes nothing outside per-function state (analyses, candidate
 * indices including the function's own value ids, solver stats), all
 * of which is owned by a single worker. runParallel /
 * runParallelBatch exploit that with a work-stealing shard pool while
 * keeping results byte-identical to the serial driver. The guarantee
 * is scoped per function: run at most one matching pass over a given
 * module at a time (two concurrent runs would both build indices —
 * and write ids — for the same functions).
 */
#ifndef DRIVER_DRIVER_H
#define DRIVER_DRIVER_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/function_analyses.h"
#include "benchmarks/suite.h"
#include "idioms/library.h"
#include "solver/solver.h"
#include "transform/transform.h"

namespace repro::driver {

/** Pipeline configuration. */
struct DriverOptions
{
    /** Limits forwarded to every constraint solve. */
    solver::SolverLimits limits;
    /**
     * Run the idiom-to-API transformation stage after matching. The
     * report's match solutions then dangle into rewritten IR; see
     * MatchReport.
     */
    bool applyTransforms = false;
};

/** Matches and solver effort of one function. */
struct FunctionReport
{
    ir::Function *function = nullptr;
    std::vector<idioms::IdiomMatch> matches;
    /** Solver effort spent on this function alone. */
    solver::SolveStats stats;
};

/**
 * Result of one batched run over a module.
 *
 * When the run applied transformations, the matches' solution
 * bindings may reference IR the rewriting stage has since erased:
 * use them for counting/classification only and take the surviving
 * structure from `replacements`.
 */
struct MatchReport
{
    std::vector<FunctionReport> functions;
    /** Replacements performed (empty unless applyTransforms). */
    std::vector<transform::Replacement> replacements;
    /** Solver effort summed over the whole batch. */
    solver::SolveStats totals;

    /** All matches flattened in module order. */
    std::vector<idioms::IdiomMatch> allMatches() const;

    /** Total number of matches across all functions. */
    size_t matchCount() const;
};

/**
 * Differential execution record of one benchmark program, produced by
 * MatchingDriver::verifyTransform. The harness runs the original and
 * the transformed program on identically seeded heaps, each under
 * both execution engines (bytecode Interpreter::run and tree-walking
 * Interpreter::runReference), and requires:
 *
 *  - byte-identical final heaps, return values, Profile counts and
 *    per-natural-loop dynamic instruction counts between the two
 *    engines, for the original and the transformed program alike; and
 *  - byte-identical watched output arrays and return values between
 *    the original and the transformed program (the paper's Figure 1
 *    claim: replacing idioms with heterogeneous API calls preserves
 *    results).
 */
struct TransformVerification
{
    std::string name;
    /** Idiom matches found / replacements actually applied. */
    size_t matches = 0;
    size_t replacements = 0;
    /** Natural loops whose dynamic counts were compared per engine. */
    size_t loopsCompared = 0;
    /** Dynamic instructions of the original / transformed program
     *  (reference engine; the bytecode engine must agree exactly). */
    uint64_t originalSteps = 0;
    uint64_t transformedSteps = 0;
    /** First mismatch description; empty when everything agreed. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Raw solve of one lowered constraint program (ablation studies). */
struct SolveOutcome
{
    std::vector<solver::Solution> solutions;
    solver::SolveStats stats;
    /** Wall-clock of the search itself, excluding solver setup. */
    double solveMillis = 0.0;
};

/**
 * The batched matching pipeline. One driver instance owns a
 * per-function analysis cache; reusing the instance across calls
 * reuses the analyses as long as the underlying functions are not
 * mutated (the transformation stage invalidates them itself).
 *
 * The cache holds raw pointers into one module. compileAndMatch
 * starts every batch by dropping it, and analysesFor drops it when
 * handed a function of a different live module; but when a module is
 * destroyed and the driver then matches functions of a NEW module via
 * matchFunction/matchOne/solveProgram directly, call invalidateAll()
 * first — address recycling can defeat the pointer-identity guard.
 */
class MatchingDriver
{
  public:
    explicit MatchingDriver(DriverOptions opts = {});

    /**
     * Full pipeline: compile @p source into @p module (parse, codegen,
     * mem2reg, LICM, DCE), then match every function in a batch.
     * Throws FatalError on compilation failure.
     */
    MatchReport compileAndMatch(const std::string &source,
                                ir::Module &module);

    /** Batch-match every defined function of an existing module. */
    MatchReport matchModule(ir::Module &module);

    /**
     * Parallel matchModule: the module's defined functions become
     * shards on a work-stealing queue drained by @p numThreads
     * workers (0 = hardware concurrency, 1 = inline on the calling
     * thread). Each worker owns its FunctionAnalyses cache and a
     * private SolveStats accumulator, merged at join, so the match
     * sets, the per-function stats and the aggregated totals are
     * byte-identical to matchModule() and reported in module order
     * regardless of scheduling. The optional transformation stage
     * runs after the join through applyAllParallel (one rewrite
     * engine per module on the same pool).
     */
    MatchReport runParallel(ir::Module &module,
                            unsigned numThreads = 0);

    /**
     * Parallel matching across several modules through one shared
     * work-stealing queue — the right shape when every module has few
     * functions (each of the paper's 21 benchmark programs compiles
     * to a single-function module). Reports are returned in
     * @p modules order with the same determinism guarantees as
     * runParallel.
     */
    std::vector<MatchReport>
    runParallelBatch(const std::vector<ir::Module *> &modules,
                     unsigned numThreads = 0);

    /**
     * Full pipeline with parallel matching: serial compile (parse,
     * codegen, mem2reg, LICM, DCE), then runParallel over the result.
     * Throws FatalError on compilation failure.
     */
    MatchReport compileAndMatchParallel(const std::string &source,
                                        ir::Module &module,
                                        unsigned numThreads = 0);

    /**
     * Parallel transform stage: module @p i becomes one shard on the
     * same work-stealing pool the parallel matcher uses, and a fresh
     * transactional Transformer applies @p matches[i] to it
     * (plan → resolve overlaps → validate → commit; see
     * transform/rewrite.h). Modules are fully independent — planning
     * and commit for different modules run concurrently — while
     * within one module the engine plans in match order, so the
     * replacement lists are byte-identical to the serial stage and
     * returned in @p modules order regardless of scheduling.
     * Throws FatalError when the two vectors disagree in size.
     */
    std::vector<std::vector<transform::Replacement>>
    applyAllParallel(
        const std::vector<ir::Module *> &modules,
        const std::vector<std::vector<idioms::IdiomMatch>> &matches,
        unsigned numThreads = 0);

    /**
     * Differentially verify one benchmark program end to end
     * (match -> transform -> bind -> execute); see
     * TransformVerification for the exact contract. Self-contained:
     * compiles private modules and drivers, never touches this
     * instance's analysis cache (only opts_.limits is read), so it is
     * safe to call concurrently from many workers.
     */
    TransformVerification
    verifyTransform(const benchmarks::BenchmarkProgram &program) const;

    /** verifyTransform over the whole NAS/Parboil suite, in order. */
    std::vector<TransformVerification> verifyTransforms() const;

    /**
     * Parallel verifyTransforms: the suite's programs become shards
     * on the same work-stealing pool the parallel matcher uses
     * (0 = hardware concurrency). Results are written to slots
     * preassigned in suite order, so they are identical to the
     * serial variant regardless of scheduling.
     */
    std::vector<TransformVerification>
    verifyTransformsParallel(unsigned numThreads = 0) const;

    /** Match one function, all top-level idioms, with subsumption. */
    std::vector<idioms::IdiomMatch> matchFunction(ir::Function *func);

    /** Match one named idiom against one function (no subsumption). */
    std::vector<idioms::IdiomMatch>
    matchOne(ir::Function *func, const std::string &idiom);

    /**
     * Solve an already lowered constraint program against a function,
     * reusing cached analyses. Used by ablations that perturb the
     * program before solving.
     */
    SolveOutcome solveProgram(ir::Function *func,
                              const solver::ConstraintProgram &program);

    /**
     * The cached analyses of @p func (built on first request). The
     * cache is scoped to one module at a time: requesting a function
     * of a different module drops all entries, since function
     * addresses can be recycled across module lifetimes.
     */
    analysis::FunctionAnalyses &analysesFor(ir::Function *func);

    /** Drop cached analyses after @p func is mutated. */
    void invalidate(ir::Function *func);

    /** Drop the entire analysis cache. */
    void invalidateAll();

    /** Solver effort accumulated over the driver's lifetime. */
    const solver::SolveStats &totals() const { return totals_; }

    const DriverOptions &options() const { return opts_; }

  private:
    void accumulate(const solver::SolveStats &delta);

    /**
     * The parallel engine: drain (function, report slot) work items
     * with @p numThreads workers and return the merged per-worker
     * stats. Slot pointers must stay stable for the whole call.
     */
    solver::SolveStats
    matchShards(const std::vector<std::pair<ir::Function *,
                                            FunctionReport *>> &items,
                unsigned numThreads);

    DriverOptions opts_;
    solver::SolveStats totals_;
    /** Module the cached analyses belong to. */
    const ir::Module *module_ = nullptr;
    std::map<ir::Function *, std::unique_ptr<analysis::FunctionAnalyses>>
        cache_;
};

} // namespace repro::driver

#endif // DRIVER_DRIVER_H
