/**
 * @file
 * Batched end-to-end idiom-matching driver.
 *
 * Every evaluation binary of the paper (Tables 1-3, Figures 16-19)
 * needs the same pipeline: compile MiniC to optimized SSA, run the
 * idiom library's constraint solver over every function, and
 * optionally apply the idiom-to-API transformations. The
 * MatchingDriver packages that pipeline behind one entry point,
 * caching the per-function analyses (dominators, loops, CFG,
 * candidate indices) so a batch over N idioms builds them once per
 * function instead of once per (function, idiom) pair, and
 * aggregating SolveStats so callers get the paper's search-effort
 * numbers without threading counters through their own loops.
 *
 * Matching is embarrassingly parallel across functions: solving
 * writes nothing outside per-function state (analyses, candidate
 * indices including the function's own value ids, solver stats), all
 * of which is owned by a single worker. runParallel /
 * runParallelBatch exploit that with a work-stealing shard pool while
 * keeping results byte-identical to the serial driver. The guarantee
 * is scoped per function: run at most one matching pass over a given
 * module at a time (two concurrent runs would both build indices —
 * and write ids — for the same functions).
 */
#ifndef DRIVER_DRIVER_H
#define DRIVER_DRIVER_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/function_analyses.h"
#include "benchmarks/suite.h"
#include "driver/match_cache.h"
#include "idioms/library.h"
#include "ir/verifier.h"
#include "solver/solver.h"
#include "transform/transform.h"

namespace repro::driver {

/** Pipeline configuration. */
struct DriverOptions
{
    /** Limits forwarded to every constraint solve. */
    solver::SolverLimits limits;
    /**
     * Run the idiom-to-API transformation stage after matching. The
     * report's match solutions then dangle into rewritten IR; see
     * MatchReport.
     */
    bool applyTransforms = false;
    /**
     * Cross-request match cache shared between drivers, service
     * sessions and worker threads (see driver/match_cache.h). When
     * set, matchModule/runParallelBatch replay cached solve results
     * for any function whose contentHash is already stored instead of
     * re-solving it. Null (the default) preserves the pure batch
     * pipeline byte for byte.
     */
    std::shared_ptr<MatchCache> cache;
    /**
     * Pass-boundary IR verification (ir/verifier.h). Defaults to the
     * REPRO_VERIFY environment switch. With VerifyMode::Boundaries
     * the pipeline re-verifies the module after frontend compilation
     * (per optimization stage), after every rewrite-engine commit and
     * rollback, and before bytecode lowering in the execution harness
     * — throwing InternalError naming the first broken boundary.
     */
    ir::VerifyMode verify = ir::defaultVerifyMode();
    /**
     * How the transform stage picks each replacement's backend
     * (transform/transform.h). Fixed — the default — lowers every
     * idiom class to its historical host target, keeping Table 1
     * counts and every byte-parity test unchanged; CostModel ranks
     * all legal (API, platform) lowerings by the cost model
     * (runtime/cost.h) against the call site's workload descriptor
     * (profiled via profileWorkloads, else the static trip-count
     * estimate) and commits the cheapest.
     */
    transform::BackendPolicy backendPolicy =
        transform::BackendPolicy::Fixed;
    /**
     * Force the backend of every replacement of a given kind ("gemm",
     * "spmv", ...), overriding the policy — the differential sweep's
     * way of driving each legal alternative through the pipeline.
     */
    std::map<std::string, runtime::BackendTarget> forcedBackends;
};

/** Matches and solver effort of one function. */
struct FunctionReport
{
    ir::Function *function = nullptr;
    std::vector<idioms::IdiomMatch> matches;
    /** Solver effort spent on this function alone. When the result
     *  was replayed from the match cache these are the stats of the
     *  original solve, so warm reports stay byte-identical to cold
     *  ones. */
    solver::SolveStats stats;
    /** Structural hash (only computed when a cache is attached). */
    uint64_t contentHash = 0;
    /** True when the result was replayed from the match cache. */
    bool fromCache = false;
    /**
     * Worst solve status across this function's idiom solves.
     * Non-Complete means the matches are valid but possibly
     * incomplete; such results are reported to the caller and NEVER
     * deposited into the match cache (a later resubmission re-solves
     * instead of replaying a truncated result). Replayed entries are
     * always Complete — degraded results are uncacheable.
     */
    solver::SolveStatus status = solver::SolveStatus::Complete;
};

/**
 * Result of one batched run over a module.
 *
 * When the run applied transformations, the matches' solution
 * bindings may reference IR the rewriting stage has since erased:
 * use them for counting/classification only and take the surviving
 * structure from `replacements`.
 */
struct MatchReport
{
    std::vector<FunctionReport> functions;
    /** Replacements performed (empty unless applyTransforms). */
    std::vector<transform::Replacement> replacements;
    /** Solver effort summed over the whole batch (replayed functions
     *  contribute their original solve's stats). */
    solver::SolveStats totals;
    /** Functions replayed from / missed in the match cache. Both stay
     *  zero when no cache is attached. */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    /** Worst per-function solve status (see FunctionReport::status). */
    solver::SolveStatus status = solver::SolveStatus::Complete;

    /** True when some solve stopped at a budget/deadline limit. */
    bool degraded() const
    {
        return status != solver::SolveStatus::Complete;
    }

    /** All matches flattened in module order. */
    std::vector<idioms::IdiomMatch> allMatches() const;

    /** Total number of matches across all functions. */
    size_t matchCount() const;
};

/**
 * Differential execution record of one benchmark program, produced by
 * MatchingDriver::verifyTransform. The harness runs the original and
 * the transformed program on identically seeded heaps, each under
 * both execution engines (bytecode Interpreter::run and tree-walking
 * Interpreter::runReference), and requires:
 *
 *  - byte-identical final heaps, return values, Profile counts and
 *    per-natural-loop dynamic instruction counts between the two
 *    engines, for the original and the transformed program alike; and
 *  - byte-identical watched output arrays and return values between
 *    the original and the transformed program (the paper's Figure 1
 *    claim: replacing idioms with heterogeneous API calls preserves
 *    results).
 */
struct TransformVerification
{
    std::string name;
    /** Idiom matches found / replacements actually applied. */
    size_t matches = 0;
    size_t replacements = 0;
    /** Natural loops whose dynamic counts were compared per engine. */
    size_t loopsCompared = 0;
    /** Dynamic instructions of the original / transformed program
     *  (reference engine; the bytecode engine must agree exactly). */
    uint64_t originalSteps = 0;
    uint64_t transformedSteps = 0;
    /** First mismatch description; empty when everything agreed. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Raw solve of one lowered constraint program (ablation studies). */
struct SolveOutcome
{
    std::vector<solver::Solution> solutions;
    solver::SolveStats stats;
    /** Wall-clock of the search itself, excluding solver setup. */
    double solveMillis = 0.0;
};

/**
 * The matching pipeline, usable one-shot or as a long-lived session
 * core. One driver instance owns a per-function analysis cache;
 * reusing the instance across calls reuses the analyses as long as
 * the underlying functions are not mutated. Entries are guarded by
 * the function's contentHash(): a mutated (or recompiled-in-place)
 * function is detected on the next analysesFor and its stale
 * dominators/loops/CandidateIndex are rebuilt instead of served.
 *
 * The analysis cache holds raw pointers into one module.
 * compileAndMatch starts every batch by dropping it, and analysesFor
 * drops it when handed a function of a different live module; but
 * when a module is destroyed and the driver then matches functions of
 * a NEW module via matchFunction/matchOne/solveProgram directly, call
 * invalidateAll() first — address recycling can defeat the
 * pointer-identity guard.
 *
 * With a MatchCache attached (DriverOptions::cache or attachCache),
 * matchModule / runParallel / runParallelBatch become incremental
 * across requests: each function's solve result is stored portably
 * under (contentHash, idiomSetHash), and any later function hashing
 * equal — the same function resubmitted, or the same body from
 * another client — replays the stored matches re-anchored onto its
 * own IR instead of re-solving. Replayed functions contribute their
 * original SolveStats to the report (keeping warm reports
 * byte-identical to cold ones) but not to totals(), which keeps
 * counting real solver effort only. matchFunction/matchOne/
 * solveProgram bypass the cache: their keys (single idiom, ad-hoc
 * program) live outside the full-idiom-set key space.
 */
class MatchingDriver
{
  public:
    explicit MatchingDriver(DriverOptions opts = {});

    /**
     * Full pipeline: compile @p source into @p module (parse, codegen,
     * mem2reg, LICM, DCE), then match every function in a batch.
     * Throws FatalError on compilation failure.
     */
    MatchReport compileAndMatch(const std::string &source,
                                ir::Module &module);

    /** Batch-match every defined function of an existing module. */
    MatchReport matchModule(ir::Module &module);

    /**
     * Parallel matchModule: the module's defined functions become
     * shards on a work-stealing queue drained by @p numThreads
     * workers (0 = hardware concurrency, 1 = inline on the calling
     * thread). Each worker owns its FunctionAnalyses cache and a
     * private SolveStats accumulator, merged at join, so the match
     * sets, the per-function stats and the aggregated totals are
     * byte-identical to matchModule() and reported in module order
     * regardless of scheduling. The optional transformation stage
     * runs after the join through applyAllParallel (one rewrite
     * engine per module on the same pool).
     */
    MatchReport runParallel(ir::Module &module,
                            unsigned numThreads = 0);

    /**
     * Parallel matching across several modules through one shared
     * work-stealing queue — the right shape when every module has few
     * functions (each of the paper's 21 benchmark programs compiles
     * to a single-function module). Reports are returned in
     * @p modules order with the same determinism guarantees as
     * runParallel.
     */
    std::vector<MatchReport>
    runParallelBatch(const std::vector<ir::Module *> &modules,
                     unsigned numThreads = 0);

    /**
     * Full pipeline with parallel matching: serial compile (parse,
     * codegen, mem2reg, LICM, DCE), then runParallel over the result.
     * Throws FatalError on compilation failure.
     */
    MatchReport compileAndMatchParallel(const std::string &source,
                                        ir::Module &module,
                                        unsigned numThreads = 0);

    /**
     * Parallel transform stage: module @p i becomes one shard on the
     * same work-stealing pool the parallel matcher uses, and a fresh
     * transactional Transformer applies @p matches[i] to it
     * (plan → resolve overlaps → validate → commit; see
     * transform/rewrite.h). Modules are fully independent — planning
     * and commit for different modules run concurrently — while
     * within one module the engine plans in match order, so the
     * replacement lists are byte-identical to the serial stage and
     * returned in @p modules order regardless of scheduling.
     * Throws FatalError when the two vectors disagree in size.
     */
    std::vector<std::vector<transform::Replacement>>
    applyAllParallel(
        const std::vector<ir::Module *> &modules,
        const std::vector<std::vector<idioms::IdiomMatch>> &matches,
        unsigned numThreads = 0);

    /**
     * Differentially verify one benchmark program end to end
     * (match -> transform -> bind -> execute); see
     * TransformVerification for the exact contract. Self-contained:
     * compiles private modules and drivers, never touches this
     * instance's analysis cache (only opts_.limits is read), so it is
     * safe to call concurrently from many workers.
     */
    TransformVerification
    verifyTransform(const benchmarks::BenchmarkProgram &program) const;

    /**
     * verifyTransform with a sabotage hook: @p tamper mutates the
     * transformed module after match + rewrite but before any
     * execution. The negative-oracle tests drive this to prove the
     * differential harness can actually fail — a deliberately broken
     * transformation (say, a dropped store) must surface as a
     * non-empty error, otherwise the 21-program green run proves
     * nothing. Pass a null hook for the production behavior.
     */
    TransformVerification
    verifyTransform(const benchmarks::BenchmarkProgram &program,
                    const std::function<void(ir::Module &)> &tamper)
        const;

    /** verifyTransform over the whole NAS/Parboil suite, in order. */
    std::vector<TransformVerification> verifyTransforms() const;

    /**
     * Parallel verifyTransforms: the suite's programs become shards
     * on the same work-stealing pool the parallel matcher uses
     * (0 = hardware concurrency). Results are written to slots
     * preassigned in suite order, so they are identical to the
     * serial variant regardless of scheduling.
     */
    std::vector<TransformVerification>
    verifyTransformsParallel(unsigned numThreads = 0) const;

    /** Match one function, all top-level idioms, with subsumption. */
    std::vector<idioms::IdiomMatch> matchFunction(ir::Function *func);

    /** Match one named idiom against one function (no subsumption). */
    std::vector<idioms::IdiomMatch>
    matchOne(ir::Function *func, const std::string &idiom);

    /**
     * Solve an already lowered constraint program against a function,
     * reusing cached analyses. Used by ablations that perturb the
     * program before solving.
     */
    SolveOutcome solveProgram(ir::Function *func,
                              const solver::ConstraintProgram &program);

    /**
     * Profile the module's dynamic workloads: execute @p program's
     * entry once with instruction profiling on, estimate a
     * WorkloadDescriptor for every natural loop from the observed
     * counts (analysis/workload.h), and deposit the descriptors into
     * this driver's cached analyses. A subsequent matchModule with
     * BackendPolicy::CostModel prices backends against the profiled
     * trip counts / bytes instead of the static fallback. The run
     * mutates only a private Memory; the module itself is untouched.
     */
    void profileWorkloads(ir::Module &module,
                          const benchmarks::BenchmarkProgram &program);

    /**
     * The cached analyses of @p func (built on first request). The
     * cache is scoped to one module at a time: requesting a function
     * of a different module drops all entries, since function
     * addresses can be recycled across module lifetimes.
     */
    analysis::FunctionAnalyses &analysesFor(ir::Function *func);

    /** Drop cached analyses after @p func is mutated. */
    void invalidate(ir::Function *func);

    /** Drop the entire analysis cache. */
    void invalidateAll();

    /** Solver effort accumulated over the driver's lifetime. Cache
     *  replays do not count: this is real search work only. */
    const solver::SolveStats &totals() const { return totals_; }

    const DriverOptions &options() const { return opts_; }

    /**
     * Replace the solver limits for subsequent solves. The service
     * front uses this to apply a per-request wall-clock deadline
     * (SolverLimits::deadline) to a long-lived session driver; the
     * caller must serialize this against concurrent runs (MatchService
     * holds its session mutex across set + match).
     */
    void setSolverLimits(const solver::SolverLimits &limits)
    {
        opts_.limits = limits;
    }

    /** Attach (or detach, with nullptr) the cross-request cache. */
    void attachCache(std::shared_ptr<MatchCache> cache);

    /** The attached cross-request cache; may be null. */
    const std::shared_ptr<MatchCache> &matchCache() const
    {
        return opts_.cache;
    }

    /**
     * Analysis epoch: drawn from a process-wide monotonic counter at
     * construction and re-drawn by every invalidateAll(). Analyses
     * deposited into the MatchCache are tagged with it so a recycled
     * function address from a destroyed module can never revive
     * another epoch's analyses. Globally unique across driver
     * instances — a MatchCache shared between drivers can never hand
     * one driver analyses deposited by another.
     */
    uint64_t epoch() const { return epoch_; }

  private:
    /** Next value of the process-wide epoch counter (never 0). */
    static uint64_t nextEpoch();

    void accumulate(const solver::SolveStats &delta);

    /**
     * Replay @p func's cached solve result into @p fr if the attached
     * cache holds its (contentHash, idiomSetHash) key and the entry
     * re-anchors cleanly. Counts the cache hit/miss. Requires
     * fr->contentHash to be set.
     */
    bool tryReplay(ir::Function *func, FunctionReport *fr);

    /**
     * Store @p fr's freshly solved matches in the attached cache,
     * depositing @p analyses (may be null) for same-epoch reuse.
     * Functions whose bindings cannot be encoded portably are left
     * uncached.
     */
    void storeSolveResult(
        ir::Function *func, const FunctionReport &fr,
        std::shared_ptr<analysis::FunctionAnalyses> analyses);

    /**
     * Backend-selection inputs for a Transformer, derived from the
     * options. With @p withWorkloads the config's workload hook reads
     * this driver's serial analysis cache (profileWorkloads deposits)
     * — serial transform stage only; the parallel stage passes false
     * so workers never touch cache_.
     */
    transform::BackendConfig backendConfig(bool withWorkloads);

    /**
     * The parallel engine: drain (function, report slot) work items
     * with @p numThreads workers and return the merged per-worker
     * stats. Slot pointers must stay stable for the whole call.
     */
    solver::SolveStats
    matchShards(const std::vector<std::pair<ir::Function *,
                                            FunctionReport *>> &items,
                unsigned numThreads);

    /** One analysis-cache slot, guarded by the content hash it was
     *  built for. */
    struct AnalysesSlot
    {
        uint64_t hash = 0;
        std::shared_ptr<analysis::FunctionAnalyses> analyses;
    };

    DriverOptions opts_;
    solver::SolveStats totals_;
    /** Module the cached analyses belong to. */
    const ir::Module *module_ = nullptr;
    std::map<ir::Function *, AnalysesSlot> cache_;
    uint64_t epoch_ = nextEpoch();
};

} // namespace repro::driver

#endif // DRIVER_DRIVER_H
