#include "driver/driver.h"

#include <chrono>

#include "frontend/compiler.h"

namespace repro::driver {

std::vector<idioms::IdiomMatch>
MatchReport::allMatches() const
{
    std::vector<idioms::IdiomMatch> all;
    for (const auto &fr : functions)
        all.insert(all.end(), fr.matches.begin(), fr.matches.end());
    return all;
}

size_t
MatchReport::matchCount() const
{
    size_t n = 0;
    for (const auto &fr : functions)
        n += fr.matches.size();
    return n;
}

MatchingDriver::MatchingDriver(DriverOptions opts) : opts_(opts) {}

MatchReport
MatchingDriver::compileAndMatch(const std::string &source,
                                ir::Module &module)
{
    // A new batch over a new module: entries from any earlier module
    // are stale (its functions may even share recycled addresses).
    invalidateAll();
    frontend::compileMiniCOrDie(source, module);
    return matchModule(module);
}

MatchReport
MatchingDriver::matchModule(ir::Module &module)
{
    MatchReport report;
    for (const auto &f : module.functions()) {
        if (f->isDeclaration())
            continue;
        FunctionReport fr;
        fr.function = f.get();
        idioms::IdiomDetector detector(opts_.limits);
        fr.matches = detector.detect(f.get(), analysesFor(f.get()));
        fr.stats = detector.stats();
        accumulate(fr.stats);
        report.totals += fr.stats;
        report.functions.push_back(std::move(fr));
    }
    if (opts_.applyTransforms) {
        transform::Transformer transformer(module);
        report.replacements = transformer.applyAll(report.allMatches());
        // The transformation stage rewrites matched functions and adds
        // extracted kernels; every cached analysis is suspect now.
        invalidateAll();
    }
    return report;
}

std::vector<idioms::IdiomMatch>
MatchingDriver::matchFunction(ir::Function *func)
{
    idioms::IdiomDetector detector(opts_.limits);
    auto matches = detector.detect(func, analysesFor(func));
    accumulate(detector.stats());
    return matches;
}

std::vector<idioms::IdiomMatch>
MatchingDriver::matchOne(ir::Function *func, const std::string &idiom)
{
    idioms::IdiomDetector detector(opts_.limits);
    auto matches = detector.detectOne(func, idiom, analysesFor(func));
    accumulate(detector.stats());
    return matches;
}

SolveOutcome
MatchingDriver::solveProgram(ir::Function *func,
                             const solver::ConstraintProgram &program)
{
    analysis::FunctionAnalyses &fa = analysesFor(func);
    // Build the lazy analyses up front so solveMillis measures the
    // search alone, cold or warm cache alike.
    fa.domTree();
    fa.postDomTree();
    fa.cfg();
    fa.loopInfo();
    solver::Solver solver(func, fa);
    SolveOutcome outcome;
    auto t0 = std::chrono::steady_clock::now();
    outcome.solutions = solver.solveAll(program, opts_.limits);
    auto dt = std::chrono::steady_clock::now() - t0;
    outcome.solveMillis =
        std::chrono::duration<double, std::milli>(dt).count();
    outcome.stats = solver.stats();
    accumulate(outcome.stats);
    return outcome;
}

analysis::FunctionAnalyses &
MatchingDriver::analysesFor(ir::Function *func)
{
    if (func->parentModule() != module_) {
        invalidateAll();
        module_ = func->parentModule();
    }
    auto &slot = cache_[func];
    if (!slot)
        slot = std::make_unique<analysis::FunctionAnalyses>(func);
    return *slot;
}

void
MatchingDriver::invalidate(ir::Function *func)
{
    cache_.erase(func);
}

void
MatchingDriver::invalidateAll()
{
    cache_.clear();
    module_ = nullptr;
}

void
MatchingDriver::accumulate(const solver::SolveStats &delta)
{
    totals_ += delta;
}

} // namespace repro::driver
