#include "driver/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <set>
#include <thread>

#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "frontend/compiler.h"
#include "interp/builtins.h"
#include "transform/binder.h"

namespace repro::driver {

namespace {

/** Resolve a requested worker count against the item count. */
unsigned
resolveThreads(unsigned requested, size_t numItems)
{
    if (requested == 0) {
        requested = std::thread::hardware_concurrency();
        if (requested == 0)
            requested = 1;
    }
    if (static_cast<size_t>(requested) > numItems)
        requested = static_cast<unsigned>(numItems ? numItems : 1);
    return requested;
}

/**
 * The work-stealing shard pool shared by the parallel matcher
 * (matchShards) and the parallel transform-verification harness:
 * @p work(item, worker) runs once per item index on one of
 * @p numThreads workers (already resolved via resolveThreads). One
 * shared counter is the queue: idle workers pop the next unclaimed
 * item, so expensive items do not serialize the tail. The first
 * exception wins, stops the pool, and is rethrown after the join.
 */
template <typename WorkFn>
void
runSharded(size_t numItems, unsigned numThreads, WorkFn &&work)
{
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::exception_ptr firstError;

    auto worker = [&](unsigned w) {
        try {
            for (size_t i =
                     next.fetch_add(1, std::memory_order_relaxed);
                 i < numItems &&
                 !failed.load(std::memory_order_relaxed);
                 i = next.fetch_add(1, std::memory_order_relaxed)) {
                work(i, w);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError)
                firstError = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
        }
    };

    if (numThreads <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(numThreads);
        try {
            for (unsigned w = 0; w < numThreads; ++w)
                pool.emplace_back(worker, w);
        } catch (...) {
            // Thread creation failed (resource exhaustion): drain the
            // queue with the started workers, then report the error —
            // destroying a joinable std::thread would terminate().
            failed.store(true, std::memory_order_relaxed);
            for (auto &t : pool)
                t.join();
            throw;
        }
        for (auto &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace

std::vector<idioms::IdiomMatch>
MatchReport::allMatches() const
{
    std::vector<idioms::IdiomMatch> all;
    for (const auto &fr : functions)
        all.insert(all.end(), fr.matches.begin(), fr.matches.end());
    return all;
}

size_t
MatchReport::matchCount() const
{
    size_t n = 0;
    for (const auto &fr : functions)
        n += fr.matches.size();
    return n;
}

MatchingDriver::MatchingDriver(DriverOptions opts) : opts_(opts) {}

uint64_t
MatchingDriver::nextEpoch()
{
    // Process-wide: two drivers sharing one MatchCache must never be
    // at the same epoch, or a recycled function address in driver B
    // could revive analyses whose IR driver A already destroyed.
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

MatchReport
MatchingDriver::compileAndMatch(const std::string &source,
                                ir::Module &module)
{
    // A new batch over a new module: entries from any earlier module
    // are stale (its functions may even share recycled addresses).
    invalidateAll();
    frontend::compileMiniCOrDie(source, module, opts_.verify);
    return matchModule(module);
}

MatchReport
MatchingDriver::matchModule(ir::Module &module)
{
    MatchReport report;
    for (const auto &f : module.functions()) {
        if (f->isDeclaration())
            continue;
        FunctionReport fr;
        fr.function = f.get();
        bool replayed = false;
        if (opts_.cache) {
            fr.contentHash = f->contentHash();
            replayed = tryReplay(f.get(), &fr);
            replayed ? ++report.cacheHits : ++report.cacheMisses;
        }
        if (!replayed) {
            idioms::IdiomDetector detector(opts_.limits);
            fr.matches =
                detector.detect(f.get(), analysesFor(f.get()));
            fr.stats = detector.stats();
            fr.status = detector.status();
            accumulate(fr.stats);
            if (opts_.cache) {
                auto it = cache_.find(f.get());
                storeSolveResult(f.get(), fr,
                                 it != cache_.end()
                                     ? it->second.analyses
                                     : nullptr);
            }
        }
        report.status = solver::worseStatus(report.status, fr.status);
        report.totals += fr.stats;
        report.functions.push_back(std::move(fr));
    }
    if (opts_.applyTransforms) {
        transform::Transformer transformer(module, opts_.verify,
                                           backendConfig(true));
        report.replacements = transformer.applyAll(report.allMatches());
        // The transformation stage rewrites matched functions and adds
        // extracted kernels; every cached analysis is suspect now.
        invalidateAll();
    }
    return report;
}

transform::BackendConfig
MatchingDriver::backendConfig(bool withWorkloads)
{
    transform::BackendConfig config;
    config.policy = opts_.backendPolicy;
    config.forced = opts_.forcedBackends;
    if (withWorkloads) {
        // Serves the profiled descriptors profileWorkloads deposited
        // for the still-live module. Read-only on cache_: a function
        // with no slot (or a rebuilt slot without workloads) falls
        // back to the engine's static estimate.
        config.workloads =
            [this](const ir::Function *f, const ir::BasicBlock *header)
            -> const analysis::WorkloadDescriptor * {
            auto it = cache_.find(const_cast<ir::Function *>(f));
            if (it == cache_.end() || !it->second.analyses)
                return nullptr;
            return it->second.analyses->workloadFor(header);
        };
    }
    return config;
}

void
MatchingDriver::profileWorkloads(
    ir::Module &module, const benchmarks::BenchmarkProgram &program)
{
    interp::Memory mem;
    interp::Interpreter interp(module, mem);
    interp::registerMathBuiltins(interp);
    interp.enableProfile(true);
    benchmarks::Instance instance = program.setup(mem);
    ir::Function *entry = module.functionByName(program.entry);
    if (!entry)
        throw FatalError("profileWorkloads: no entry function @" +
                         program.entry);
    interp.run(entry, instance.args);
    const interp::Profile &profile = interp.profile();
    analysis::InstCountFn counts =
        [&profile](const ir::Instruction *inst) -> uint64_t {
        auto it = profile.counts.find(inst);
        return it == profile.counts.end() ? 0 : it->second;
    };
    for (const auto &f : module.functions()) {
        if (f->isDeclaration())
            continue;
        analysis::FunctionAnalyses &fa = analysesFor(f.get());
        const analysis::LoopInfo &loops = fa.loopInfo();
        for (const auto &loop : loops.loops())
            fa.setWorkload(
                loop->header,
                analysis::estimateWorkload(loops, loop.get(), counts));
    }
}

solver::SolveStats
MatchingDriver::matchShards(
    const std::vector<std::pair<ir::Function *, FunctionReport *>>
        &items,
    unsigned numThreads)
{
    numThreads = resolveThreads(numThreads, items.size());

    // Results go to preassigned slots; scheduling order never leaks
    // into the report.
    std::vector<solver::SolveStats> workerStats(numThreads);
    runSharded(items.size(), numThreads, [&](size_t i, unsigned w) {
        ir::Function *func = items[i].first;
        FunctionReport fr;
        fr.function = func;
        // Cross-request cache consults are the only shared state on
        // the worker path; the MatchCache is internally mutex-guarded
        // and replays never touch analyses at all.
        if (opts_.cache) {
            fr.contentHash = func->contentHash();
            if (tryReplay(func, &fr)) {
                *items[i].second = std::move(fr);
                return;
            }
        }
        // Worker-owned analyses (each function is exactly one shard):
        // no sharing with other workers or with the driver's serial
        // cache_, hence no locks on the matching hot path.
        analysis::FunctionAnalyses fa(func);
        idioms::IdiomDetector detector(opts_.limits);
        fr.matches = detector.detect(func, fa);
        fr.stats = detector.stats();
        fr.status = detector.status();
        workerStats[w] += fr.stats;
        if (opts_.cache) {
            // The worker's analyses are stack-owned and die with the
            // shard; only the portable matches are stored.
            storeSolveResult(func, fr, nullptr);
        }
        *items[i].second = std::move(fr);
    });

    // Contention-free stats: each worker accumulated privately; the
    // merge happens once, after the join.
    solver::SolveStats merged;
    for (const auto &s : workerStats)
        merged += s;
    return merged;
}

MatchReport
MatchingDriver::runParallel(ir::Module &module, unsigned numThreads)
{
    std::vector<ir::Module *> modules{&module};
    return std::move(runParallelBatch(modules, numThreads).front());
}

std::vector<MatchReport>
MatchingDriver::runParallelBatch(
    const std::vector<ir::Module *> &modules, unsigned numThreads)
{
    std::vector<MatchReport> reports(modules.size());

    // Preassign report slots in module order so the result layout is
    // deterministic before any worker runs.
    for (size_t m = 0; m < modules.size(); ++m) {
        for (const auto &f : modules[m]->functions()) {
            if (f->isDeclaration())
                continue;
            FunctionReport fr;
            fr.function = f.get();
            reports[m].functions.push_back(std::move(fr));
        }
    }
    std::vector<std::pair<ir::Function *, FunctionReport *>> items;
    for (auto &report : reports) {
        for (auto &fr : report.functions)
            items.emplace_back(fr.function, &fr);
    }

    accumulate(matchShards(items, numThreads));

    for (size_t m = 0; m < modules.size(); ++m) {
        for (const auto &fr : reports[m].functions) {
            reports[m].totals += fr.stats;
            reports[m].status =
                solver::worseStatus(reports[m].status, fr.status);
            if (opts_.cache) {
                fr.fromCache ? ++reports[m].cacheHits
                             : ++reports[m].cacheMisses;
            }
        }
    }
    if (opts_.applyTransforms) {
        // The transform stage shards over modules on the same pool
        // (transformShards inside applyAllParallel): each module gets
        // a private transactional engine, so results are identical to
        // the serial stage and ordered by module.
        std::vector<std::vector<idioms::IdiomMatch>> matches;
        matches.reserve(modules.size());
        for (const auto &report : reports)
            matches.push_back(report.allMatches());
        auto replacements =
            applyAllParallel(modules, matches, numThreads);
        for (size_t m = 0; m < modules.size(); ++m)
            reports[m].replacements = std::move(replacements[m]);
        // The transformation stage rewrites matched functions; any
        // analyses the driver's serial cache holds are suspect now.
        invalidateAll();
    }
    return reports;
}

std::vector<std::vector<transform::Replacement>>
MatchingDriver::applyAllParallel(
    const std::vector<ir::Module *> &modules,
    const std::vector<std::vector<idioms::IdiomMatch>> &matches,
    unsigned numThreads)
{
    if (modules.size() != matches.size()) {
        throw FatalError("applyAllParallel: modules and matches "
                         "disagree in size");
    }
    std::vector<std::vector<transform::Replacement>> out(
        modules.size());
    unsigned threads = resolveThreads(numThreads, modules.size());
    // Workload hook omitted (backendConfig(false)): the hook reads
    // the driver's serial analysis cache, which workers must not
    // touch. Cost-model selection on the parallel path prices the
    // static trip-count estimate instead.
    transform::BackendConfig config = backendConfig(false);
    runSharded(modules.size(), threads, [&](size_t i, unsigned) {
        transform::Transformer transformer(*modules[i], opts_.verify,
                                           config);
        out[i] = transformer.applyAll(matches[i]);
    });
    return out;
}

MatchReport
MatchingDriver::compileAndMatchParallel(const std::string &source,
                                        ir::Module &module,
                                        unsigned numThreads)
{
    invalidateAll();
    frontend::compileMiniCOrDie(source, module, opts_.verify);
    return runParallel(module, numThreads);
}

namespace {

/** Everything one interpreted run leaves behind. */
struct ExecutionSnapshot
{
    interp::RuntimeValue ret;
    /** Heap bytes from Memory::kBase to the final heap end. */
    std::vector<uint8_t> heap;
    interp::Profile profile;
    benchmarks::Instance instance;
};

/**
 * Seed a fresh heap with the program's setup, execute its entry
 * through one engine, and snapshot heap/return/profile. Fully
 * self-contained, hence safe per parallel worker.
 */
ExecutionSnapshot
runBenchmark(ir::Module &module,
             const benchmarks::BenchmarkProgram &program,
             const std::vector<transform::Replacement> &replacements,
             bool reference)
{
    interp::Memory mem;
    interp::Interpreter interp(module, mem);
    interp::registerMathBuiltins(interp);
    transform::bindReplacements(interp, replacements);
    interp.enableProfile(true);

    ExecutionSnapshot snap;
    snap.instance = program.setup(mem);
    ir::Function *entry = module.functionByName(program.entry);
    snap.ret = reference ? interp.runReference(entry, snap.instance.args)
                         : interp.run(entry, snap.instance.args);
    snap.profile = interp.profile();

    const uint64_t base = interp::Memory::kBase;
    interp::Memory::RawSpan span(mem, base, mem.size() - base);
    snap.heap.assign(span.data(), span.data() + span.size());
    return snap;
}

/**
 * Byte-compare two engine runs of the same module: final heap,
 * return value, full Profile, and the dynamic instruction count of
 * every natural loop (the quantity Figures 16-19 report per loop).
 * Returns the first mismatch description, or "" when identical.
 */
std::string
compareEngines(const ir::Module &module, const ExecutionSnapshot &ref,
               const ExecutionSnapshot &fast, const char *label,
               size_t *loopsCompared)
{
    const std::string what(label);
    if (ref.heap.size() != fast.heap.size())
        return what + ": final heap sizes differ between engines";
    if (!ref.heap.empty() &&
        std::memcmp(ref.heap.data(), fast.heap.data(),
                    ref.heap.size()) != 0) {
        return what + ": final heap bytes differ between engines";
    }
    if (!interp::RuntimeValue::bitsEqual(ref.ret, fast.ret))
        return what + ": return values differ between engines";
    if (ref.profile.totalSteps != fast.profile.totalSteps)
        return what + ": total dynamic instruction counts differ";
    if (ref.profile.counts != fast.profile.counts)
        return what + ": per-instruction profiles differ";

    for (const auto &func : module.functions()) {
        if (func->isDeclaration())
            continue;
        analysis::DomTree dom(func.get(), false);
        analysis::LoopInfo loops(func.get(), dom);
        for (const auto &loop : loops.loops()) {
            std::set<const ir::Instruction *> body;
            for (ir::BasicBlock *bb : loop->blocks) {
                for (const auto &inst : bb->insts())
                    body.insert(inst.get());
            }
            if (ref.profile.countIn(body) !=
                fast.profile.countIn(body)) {
                return what + ": per-loop dynamic counts differ in @" +
                       func->name();
            }
            ++*loopsCompared;
        }
    }
    return "";
}

/**
 * Byte-compare the watched output arrays and return values of the
 * original and the transformed run (their heaps as a whole are not
 * comparable: the transformed module allocates extracted-kernel
 * state the original never had).
 */
std::string
compareResults(const ExecutionSnapshot &original,
               const ExecutionSnapshot &transformed)
{
    if (original.instance.watchDoubles !=
            transformed.instance.watchDoubles ||
        original.instance.watchInts != transformed.instance.watchInts)
        return "setup produced diverging watch lists";
    if (!interp::RuntimeValue::bitsEqual(original.ret, transformed.ret))
        return "transform changed the return value";

    // "" = identical; distinguishes a malformed watch list (a
    // harness/setup bug) from a genuine semantic divergence. The
    // bounds math is overflow-safe, same discipline as
    // Memory::checkRange: no `offset + len` that could wrap.
    auto compareRegions =
        [&](const std::vector<std::pair<uint64_t, size_t>> &watches,
            uint64_t elemSize, const char *what) -> std::string {
        const uint64_t snapLen =
            std::min<uint64_t>(original.heap.size(),
                               transformed.heap.size());
        for (const auto &[addr, count] : watches) {
            std::string malformed = std::string("watched ") + what +
                                    " array lies outside the heap "
                                    "snapshot";
            if (addr < interp::Memory::kBase)
                return malformed;
            uint64_t offset = addr - interp::Memory::kBase;
            if (count > snapLen / elemSize)
                return malformed;
            uint64_t len = elemSize * count;
            if (offset > snapLen - len)
                return malformed;
            if (std::memcmp(original.heap.data() + offset,
                            transformed.heap.data() + offset,
                            len) != 0) {
                return std::string("transform changed a watched ") +
                       what + " array";
            }
        }
        return "";
    };
    std::string err =
        compareRegions(original.instance.watchDoubles, 8, "double");
    if (err.empty())
        err = compareRegions(original.instance.watchInts, 4, "int");
    return err;
}

} // namespace

TransformVerification
MatchingDriver::verifyTransform(
    const benchmarks::BenchmarkProgram &program) const
{
    return verifyTransform(program, nullptr);
}

TransformVerification
MatchingDriver::verifyTransform(
    const benchmarks::BenchmarkProgram &program,
    const std::function<void(ir::Module &)> &tamper) const
{
    TransformVerification v;
    v.name = program.name;

    // The original program, executed by both engines over identical
    // seeded heaps.
    ir::Module original;
    frontend::compileMiniCOrDie(program.source, original,
                                opts_.verify);
    ExecutionSnapshot refO = runBenchmark(original, program, {}, true);
    ExecutionSnapshot fastO =
        runBenchmark(original, program, {}, false);
    v.originalSteps = refO.profile.totalSteps;
    v.error =
        compareEngines(original, refO, fastO, "original",
                       &v.loopsCompared);
    if (!v.error.empty())
        return v;

    // The transformed program: match, rewrite, bind the native
    // skeletons, then execute by both engines.
    ir::Module transformed;
    DriverOptions localOpts = opts_;
    localOpts.applyTransforms = true;
    localOpts.cache = nullptr;
    MatchingDriver local(localOpts);
    MatchReport report =
        local.compileAndMatch(program.source, transformed);
    v.matches = report.matchCount();
    v.replacements = report.replacements.size();
    if (tamper)
        tamper(transformed);
    ExecutionSnapshot refT =
        runBenchmark(transformed, program, report.replacements, true);
    ExecutionSnapshot fastT =
        runBenchmark(transformed, program, report.replacements, false);
    v.transformedSteps = refT.profile.totalSteps;
    v.error = compareEngines(transformed, refT, fastT, "transformed",
                             &v.loopsCompared);
    if (!v.error.empty())
        return v;

    // Original vs transformed: the Figure 1 preservation claim.
    v.error = compareResults(refO, refT);
    return v;
}

std::vector<TransformVerification>
MatchingDriver::verifyTransforms() const
{
    std::vector<TransformVerification> out;
    for (const auto &program : benchmarks::nasParboilSuite())
        out.push_back(verifyTransform(program));
    return out;
}

std::vector<TransformVerification>
MatchingDriver::verifyTransformsParallel(unsigned numThreads) const
{
    // Touch every magic-static cache (suite sources, parsed idiom
    // library, lowered/compiled programs) before workers spawn.
    const auto &suite = benchmarks::nasParboilSuite();
    std::vector<TransformVerification> out(suite.size());
    unsigned threads = resolveThreads(numThreads, suite.size());
    runSharded(suite.size(), threads, [&](size_t i, unsigned) {
        out[i] = verifyTransform(suite[i]);
    });
    return out;
}

std::vector<idioms::IdiomMatch>
MatchingDriver::matchFunction(ir::Function *func)
{
    idioms::IdiomDetector detector(opts_.limits);
    auto matches = detector.detect(func, analysesFor(func));
    accumulate(detector.stats());
    return matches;
}

std::vector<idioms::IdiomMatch>
MatchingDriver::matchOne(ir::Function *func, const std::string &idiom)
{
    idioms::IdiomDetector detector(opts_.limits);
    auto matches = detector.detectOne(func, idiom, analysesFor(func));
    accumulate(detector.stats());
    return matches;
}

SolveOutcome
MatchingDriver::solveProgram(ir::Function *func,
                             const solver::ConstraintProgram &program)
{
    analysis::FunctionAnalyses &fa = analysesFor(func);
    // Build the lazy analyses up front so solveMillis measures the
    // search alone, cold or warm cache alike.
    fa.domTree();
    fa.postDomTree();
    fa.cfg();
    fa.loopInfo();
    solver::Solver solver(func, fa);
    SolveOutcome outcome;
    auto t0 = std::chrono::steady_clock::now();
    outcome.solutions = solver.solveAll(program, opts_.limits);
    auto dt = std::chrono::steady_clock::now() - t0;
    outcome.solveMillis =
        std::chrono::duration<double, std::milli>(dt).count();
    outcome.stats = solver.stats();
    accumulate(outcome.stats);
    return outcome;
}

analysis::FunctionAnalyses &
MatchingDriver::analysesFor(ir::Function *func)
{
    if (func->parentModule() != module_) {
        invalidateAll();
        module_ = func->parentModule();
    }
    // Content-hash guard: a slot built for an earlier shape of this
    // function (mutated in place, or rewritten by a pass that forgot
    // to invalidate) must never serve stale dominators/loops/indices.
    const uint64_t hash = func->contentHash();
    auto &slot = cache_[func];
    if (slot.analyses && slot.hash == hash)
        return *slot.analyses;
    slot.hash = hash;
    if (opts_.cache) {
        // A same-epoch deposit for this exact live function skips the
        // rebuild (e.g. analyses built by an earlier request against
        // the still-live module).
        CacheKey key{hash, idioms::idiomSetHash()};
        slot.analyses = opts_.cache->analysesFor(key, func, epoch_);
        if (slot.analyses)
            return *slot.analyses;
        slot.analyses =
            std::make_shared<analysis::FunctionAnalyses>(func);
        opts_.cache->depositAnalyses(key, slot.analyses, func, epoch_);
        return *slot.analyses;
    }
    slot.analyses = std::make_shared<analysis::FunctionAnalyses>(func);
    return *slot.analyses;
}

void
MatchingDriver::invalidate(ir::Function *func)
{
    cache_.erase(func);
}

void
MatchingDriver::invalidateAll()
{
    cache_.clear();
    module_ = nullptr;
    // New epoch: analyses deposited in the MatchCache under earlier
    // epochs are unreachable from now on, even if a later module's
    // function recycles an old address.
    epoch_ = nextEpoch();
}

void
MatchingDriver::attachCache(std::shared_ptr<MatchCache> cache)
{
    opts_.cache = std::move(cache);
}

bool
MatchingDriver::tryReplay(ir::Function *func, FunctionReport *fr)
{
    CacheKey key{fr->contentHash, idioms::idiomSetHash()};
    std::shared_ptr<const CachedMatches> entry =
        opts_.cache->lookup(key);
    // The signature check demotes a contentHash collision (different
    // body, equal 64-bit hash) to a miss; reanchor's membership
    // validation alone could silently accept such an entry.
    if (entry && entry->signature == MatchCache::signatureOf(func) &&
        MatchCache::reanchor(entry->matches, func, &fr->matches)) {
        fr->stats = entry->stats;
        fr->fromCache = true;
        opts_.cache->countHit();
        return true;
    }
    opts_.cache->countMiss();
    return false;
}

void
MatchingDriver::storeSolveResult(
    ir::Function *func, const FunctionReport &fr,
    std::shared_ptr<analysis::FunctionAnalyses> analyses)
{
    // A degraded solve (budget/deadline) found a valid but possibly
    // incomplete match set. Caching it would freeze the truncation:
    // every later resubmission would replay the partial result as if
    // it were complete. Leave the key cold so a warm resubmit
    // re-solves under whatever budget it arrives with.
    if (fr.status != solver::SolveStatus::Complete)
        return;
    CachedMatches entry;
    if (!MatchCache::capture(fr.matches, func, &entry.matches))
        return;
    entry.signature = MatchCache::signatureOf(func);
    entry.stats = fr.stats;
    if (analyses) {
        entry.analyses = std::move(analyses);
        entry.analysesOwner = func;
        entry.analysesEpoch = epoch_;
    }
    opts_.cache->insert(CacheKey{fr.contentHash,
                                 idioms::idiomSetHash()},
                        std::move(entry));
}

void
MatchingDriver::accumulate(const solver::SolveStats &delta)
{
    totals_ += delta;
}

} // namespace repro::driver
