#include "driver/driver.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "frontend/compiler.h"

namespace repro::driver {

std::vector<idioms::IdiomMatch>
MatchReport::allMatches() const
{
    std::vector<idioms::IdiomMatch> all;
    for (const auto &fr : functions)
        all.insert(all.end(), fr.matches.begin(), fr.matches.end());
    return all;
}

size_t
MatchReport::matchCount() const
{
    size_t n = 0;
    for (const auto &fr : functions)
        n += fr.matches.size();
    return n;
}

MatchingDriver::MatchingDriver(DriverOptions opts) : opts_(opts) {}

MatchReport
MatchingDriver::compileAndMatch(const std::string &source,
                                ir::Module &module)
{
    // A new batch over a new module: entries from any earlier module
    // are stale (its functions may even share recycled addresses).
    invalidateAll();
    frontend::compileMiniCOrDie(source, module);
    return matchModule(module);
}

MatchReport
MatchingDriver::matchModule(ir::Module &module)
{
    MatchReport report;
    for (const auto &f : module.functions()) {
        if (f->isDeclaration())
            continue;
        FunctionReport fr;
        fr.function = f.get();
        idioms::IdiomDetector detector(opts_.limits);
        fr.matches = detector.detect(f.get(), analysesFor(f.get()));
        fr.stats = detector.stats();
        accumulate(fr.stats);
        report.totals += fr.stats;
        report.functions.push_back(std::move(fr));
    }
    if (opts_.applyTransforms) {
        transform::Transformer transformer(module);
        report.replacements = transformer.applyAll(report.allMatches());
        // The transformation stage rewrites matched functions and adds
        // extracted kernels; every cached analysis is suspect now.
        invalidateAll();
    }
    return report;
}

solver::SolveStats
MatchingDriver::matchShards(
    const std::vector<std::pair<ir::Function *, FunctionReport *>>
        &items,
    unsigned numThreads)
{
    if (numThreads == 0) {
        numThreads = std::thread::hardware_concurrency();
        if (numThreads == 0)
            numThreads = 1;
    }
    if (static_cast<size_t>(numThreads) > items.size())
        numThreads = static_cast<unsigned>(items.size() ? items.size()
                                                        : 1);

    // One shared counter is the work-stealing queue: idle workers pop
    // the next unclaimed shard, so large functions do not serialize
    // the tail. Results go to preassigned slots; scheduling order
    // never leaks into the report.
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<solver::SolveStats> workerStats(numThreads);
    std::mutex errorMutex;
    std::exception_ptr firstError;

    auto worker = [&](unsigned w) {
        try {
            for (size_t i =
                     next.fetch_add(1, std::memory_order_relaxed);
                 i < items.size() &&
                 !failed.load(std::memory_order_relaxed);
                 i = next.fetch_add(1, std::memory_order_relaxed)) {
                ir::Function *func = items[i].first;
                // Worker-owned analyses (each function is exactly one
                // shard): no sharing with other workers or with the
                // driver's serial cache_, hence no locks on the
                // matching hot path.
                analysis::FunctionAnalyses fa(func);
                idioms::IdiomDetector detector(opts_.limits);
                FunctionReport fr;
                fr.function = func;
                fr.matches = detector.detect(func, fa);
                fr.stats = detector.stats();
                workerStats[w] += fr.stats;
                *items[i].second = std::move(fr);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError)
                firstError = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
        }
    };

    if (numThreads <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(numThreads);
        try {
            for (unsigned w = 0; w < numThreads; ++w)
                pool.emplace_back(worker, w);
        } catch (...) {
            // Thread creation failed (resource exhaustion): drain the
            // queue with the started workers, then report the error —
            // destroying a joinable std::thread would terminate().
            failed.store(true, std::memory_order_relaxed);
            for (auto &t : pool)
                t.join();
            throw;
        }
        for (auto &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    // Contention-free stats: each worker accumulated privately; the
    // merge happens once, after the join.
    solver::SolveStats merged;
    for (const auto &s : workerStats)
        merged += s;
    return merged;
}

MatchReport
MatchingDriver::runParallel(ir::Module &module, unsigned numThreads)
{
    std::vector<ir::Module *> modules{&module};
    return std::move(runParallelBatch(modules, numThreads).front());
}

std::vector<MatchReport>
MatchingDriver::runParallelBatch(
    const std::vector<ir::Module *> &modules, unsigned numThreads)
{
    std::vector<MatchReport> reports(modules.size());

    // Preassign report slots in module order so the result layout is
    // deterministic before any worker runs.
    for (size_t m = 0; m < modules.size(); ++m) {
        for (const auto &f : modules[m]->functions()) {
            if (f->isDeclaration())
                continue;
            FunctionReport fr;
            fr.function = f.get();
            reports[m].functions.push_back(std::move(fr));
        }
    }
    std::vector<std::pair<ir::Function *, FunctionReport *>> items;
    for (auto &report : reports) {
        for (auto &fr : report.functions)
            items.emplace_back(fr.function, &fr);
    }

    accumulate(matchShards(items, numThreads));

    bool transformed = false;
    for (size_t m = 0; m < modules.size(); ++m) {
        for (const auto &fr : reports[m].functions)
            reports[m].totals += fr.stats;
        if (opts_.applyTransforms) {
            transform::Transformer transformer(*modules[m]);
            reports[m].replacements =
                transformer.applyAll(reports[m].allMatches());
            transformed = true;
        }
    }
    // The transformation stage rewrites matched functions; any
    // analyses the driver's serial cache holds are suspect now.
    if (transformed)
        invalidateAll();
    return reports;
}

MatchReport
MatchingDriver::compileAndMatchParallel(const std::string &source,
                                        ir::Module &module,
                                        unsigned numThreads)
{
    invalidateAll();
    frontend::compileMiniCOrDie(source, module);
    return runParallel(module, numThreads);
}

std::vector<idioms::IdiomMatch>
MatchingDriver::matchFunction(ir::Function *func)
{
    idioms::IdiomDetector detector(opts_.limits);
    auto matches = detector.detect(func, analysesFor(func));
    accumulate(detector.stats());
    return matches;
}

std::vector<idioms::IdiomMatch>
MatchingDriver::matchOne(ir::Function *func, const std::string &idiom)
{
    idioms::IdiomDetector detector(opts_.limits);
    auto matches = detector.detectOne(func, idiom, analysesFor(func));
    accumulate(detector.stats());
    return matches;
}

SolveOutcome
MatchingDriver::solveProgram(ir::Function *func,
                             const solver::ConstraintProgram &program)
{
    analysis::FunctionAnalyses &fa = analysesFor(func);
    // Build the lazy analyses up front so solveMillis measures the
    // search alone, cold or warm cache alike.
    fa.domTree();
    fa.postDomTree();
    fa.cfg();
    fa.loopInfo();
    solver::Solver solver(func, fa);
    SolveOutcome outcome;
    auto t0 = std::chrono::steady_clock::now();
    outcome.solutions = solver.solveAll(program, opts_.limits);
    auto dt = std::chrono::steady_clock::now() - t0;
    outcome.solveMillis =
        std::chrono::duration<double, std::milli>(dt).count();
    outcome.stats = solver.stats();
    accumulate(outcome.stats);
    return outcome;
}

analysis::FunctionAnalyses &
MatchingDriver::analysesFor(ir::Function *func)
{
    if (func->parentModule() != module_) {
        invalidateAll();
        module_ = func->parentModule();
    }
    auto &slot = cache_[func];
    if (!slot)
        slot = std::make_unique<analysis::FunctionAnalyses>(func);
    return *slot;
}

void
MatchingDriver::invalidate(ir::Function *func)
{
    cache_.erase(func);
}

void
MatchingDriver::invalidateAll()
{
    cache_.clear();
    module_ = nullptr;
}

void
MatchingDriver::accumulate(const solver::SolveStats &delta)
{
    totals_ += delta;
}

} // namespace repro::driver
