#include "driver/cache_snapshot.h"

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace repro::driver {

namespace {

constexpr char kMagic[4] = {'R', 'M', 'C', 'S'};
/** magic + version + idiomSetHash + recordCount (checksummed). */
constexpr size_t kHeaderBodyBytes = 4 + 4 + 8 + 8;
constexpr size_t kHeaderBytes = kHeaderBodyBytes + 8;
/** payloadBytes + checksum framing in front of every record. */
constexpr size_t kRecordFrameBytes = 4 + 8;

uint64_t
fnv1a64(const uint8_t *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

// Fixed-width little-endian encoding ---------------------------------

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

/**
 * Bounds-checked reader over one record payload (or the header). A
 * corrupted length can never run past `end`: every get reports
 * failure instead, and the caller skips the record.
 */
struct Cursor
{
    const uint8_t *p;
    const uint8_t *end;

    size_t remaining() const { return static_cast<size_t>(end - p); }

    bool
    getU32(uint32_t *out)
    {
        if (remaining() < 4)
            return false;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[i]) << (8 * i);
        p += 4;
        *out = v;
        return true;
    }

    bool
    getU64(uint64_t *out)
    {
        if (remaining() < 8)
            return false;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[i]) << (8 * i);
        p += 8;
        *out = v;
        return true;
    }

    bool
    getU8(uint8_t *out)
    {
        if (remaining() < 1)
            return false;
        *out = *p++;
        return true;
    }

    bool
    getStr(std::string *out)
    {
        uint32_t len = 0;
        if (!getU32(&len) || remaining() < len)
            return false;
        out->assign(reinterpret_cast<const char *>(p), len);
        p += len;
        return true;
    }
};

void
encodeRecord(std::string &payload, const CacheKey &key,
             const CachedMatches &entry)
{
    putU64(payload, key.contentHash);
    putU64(payload, key.idiomSetHash);
    putU32(payload, entry.signature.numArgs);
    putU32(payload, entry.signature.numBlocks);
    putU32(payload, entry.signature.numInsts);
    putU64(payload, entry.stats.assignments);
    putU64(payload, entry.stats.checks);
    putU64(payload, entry.stats.solutions);
    putU64(payload, entry.stats.rotations);
    putU64(payload, entry.stats.dedupHits);
    putU32(payload, static_cast<uint32_t>(entry.matches.size()));
    for (const PortableMatch &pm : entry.matches) {
        putStr(payload, pm.idiom);
        payload.push_back(static_cast<char>(pm.cls));
        putU32(payload, static_cast<uint32_t>(pm.bindings.size()));
        for (const auto &[name, pv] : pm.bindings) {
            putStr(payload, name);
            payload.push_back(static_cast<char>(pv.kind));
            putU32(payload, pv.index);
            putU64(payload, static_cast<uint64_t>(pv.bits));
            putStr(payload, pv.text);
        }
    }
}

/**
 * Strict payload parse: every count is implicitly bounded by the
 * cursor (a hostile count simply runs out of bytes and fails), every
 * enum is range-checked. Returns false on the first inconsistency.
 */
bool
decodeRecord(Cursor cur, CacheKey *key, CachedMatches *entry)
{
    if (!cur.getU64(&key->contentHash) ||
        !cur.getU64(&key->idiomSetHash))
        return false;
    if (!cur.getU32(&entry->signature.numArgs) ||
        !cur.getU32(&entry->signature.numBlocks) ||
        !cur.getU32(&entry->signature.numInsts))
        return false;
    if (!cur.getU64(&entry->stats.assignments) ||
        !cur.getU64(&entry->stats.checks) ||
        !cur.getU64(&entry->stats.solutions) ||
        !cur.getU64(&entry->stats.rotations) ||
        !cur.getU64(&entry->stats.dedupHits))
        return false;
    uint32_t numMatches = 0;
    if (!cur.getU32(&numMatches))
        return false;
    // Each match occupies at least its idiom-length + class +
    // binding-count fields; a flipped count past that bound is
    // rejected before any reserve.
    if (numMatches > cur.remaining() / (4 + 1 + 4))
        return false;
    entry->matches.reserve(numMatches);
    for (uint32_t m = 0; m < numMatches; ++m) {
        PortableMatch pm;
        uint8_t cls = 0;
        if (!cur.getStr(&pm.idiom) || !cur.getU8(&cls))
            return false;
        if (cls > static_cast<uint8_t>(idioms::IdiomClass::Other))
            return false;
        pm.cls = static_cast<idioms::IdiomClass>(cls);
        uint32_t numBindings = 0;
        if (!cur.getU32(&numBindings))
            return false;
        if (numBindings > cur.remaining() / (4 + 1 + 4 + 8 + 4))
            return false;
        pm.bindings.reserve(numBindings);
        for (uint32_t b = 0; b < numBindings; ++b) {
            std::string name;
            PortableValue pv;
            uint8_t kind = 0;
            uint64_t bits = 0;
            if (!cur.getStr(&name) || !cur.getU8(&kind) ||
                !cur.getU32(&pv.index) || !cur.getU64(&bits) ||
                !cur.getStr(&pv.text))
                return false;
            if (kind > static_cast<uint8_t>(PortableValue::Kind::Func))
                return false;
            pv.kind = static_cast<PortableValue::Kind>(kind);
            pv.bits = static_cast<int64_t>(bits);
            pm.bindings.emplace_back(std::move(name), std::move(pv));
        }
        entry->matches.push_back(std::move(pm));
    }
    // Trailing garbage inside a checksummed payload would mean the
    // writer and reader disagree about the format: reject.
    return cur.remaining() == 0;
}

/** write(2) the whole buffer, retrying on EINTR / short writes. */
bool
writeAll(int fd, const char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

/** fsync the directory containing @p path (commit the rename). */
void
syncParentDir(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty())
        dir = "/";
    int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace

SnapshotResult
saveSnapshot(const MatchCache &cache, const std::string &path)
{
    SnapshotResult result;
    const auto entries = cache.entriesMruFirst();

    std::string blob;
    blob.append(kMagic, sizeof(kMagic));
    putU32(blob, kSnapshotVersion);
    putU64(blob, idioms::idiomSetHash());
    putU64(blob, static_cast<uint64_t>(entries.size()));
    putU64(blob,
           fnv1a64(reinterpret_cast<const uint8_t *>(blob.data()),
                   kHeaderBodyBytes));

    std::string payload;
    for (const auto &[key, entry] : entries) {
        payload.clear();
        encodeRecord(payload, key, *entry);
        if (payload.size() > kMaxSnapshotRecordBytes) {
            // Unserializable outlier: drop it rather than emit a
            // record the loader is contractually required to skip.
            ++result.skipped;
            continue;
        }
        putU32(blob, static_cast<uint32_t>(payload.size()));
        putU64(blob,
               fnv1a64(reinterpret_cast<const uint8_t *>(
                           payload.data()),
                       payload.size()));
        blob += payload;
        ++result.records;
    }
    if (result.skipped > 0) {
        // The header count must match the records actually framed.
        std::string fixed(blob, 0, sizeof(kMagic) + 4 + 8);
        putU64(fixed, static_cast<uint64_t>(result.records));
        putU64(fixed,
               fnv1a64(reinterpret_cast<const uint8_t *>(
                           fixed.data()),
                       kHeaderBodyBytes));
        blob.replace(0, kHeaderBytes, fixed);
        result.detail = "skipped " + std::to_string(result.skipped) +
                        " oversized record(s)";
    }

    // Crash-only commit: temp file in the same directory, fsync,
    // atomic rename over the destination, fsync the directory. A kill
    // at any point leaves the previous committed snapshot intact.
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        result.detail = "open(" + tmp + "): " + std::strerror(errno);
        return result;
    }
    if (!writeAll(fd, blob.data(), blob.size())) {
        result.detail = "write(" + tmp + "): " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return result;
    }
    if (::fsync(fd) != 0) {
        result.detail = "fsync(" + tmp + "): " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return result;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        result.detail = "rename to " + path + ": " +
                        std::strerror(errno);
        ::unlink(tmp.c_str());
        return result;
    }
    syncParentDir(path);
    result.ok = true;
    result.bytes = blob.size();
    return result;
}

SnapshotResult
loadSnapshot(MatchCache &cache, const std::string &path)
{
    SnapshotResult result;

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        result.detail = errno == ENOENT
                            ? "no snapshot file (cold start)"
                            : "open(" + path + "): " +
                                  std::strerror(errno);
        return result;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
        static_cast<uint64_t>(st.st_size) > kMaxSnapshotBytes) {
        result.detail = "implausible snapshot size (cold start)";
        ::close(fd);
        return result;
    }
    std::vector<uint8_t> blob(static_cast<size_t>(st.st_size));
    size_t off = 0;
    while (off < blob.size()) {
        ssize_t r = ::read(fd, blob.data() + off, blob.size() - off);
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            break;
        off += static_cast<size_t>(r);
    }
    ::close(fd);
    if (off != blob.size()) {
        result.detail = "short read (cold start)";
        return result;
    }
    result.bytes = blob.size();

    // Header: anything untrustworthy here is a cold start — the
    // record count below is only believed because it is checksummed.
    if (blob.size() < kHeaderBytes ||
        std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
        result.detail = "bad magic or truncated header (cold start)";
        return result;
    }
    Cursor header{blob.data() + sizeof(kMagic),
                  blob.data() + kHeaderBytes};
    uint32_t version = 0;
    uint64_t setHash = 0, recordCount = 0, headerSum = 0;
    header.getU32(&version);
    header.getU64(&setHash);
    header.getU64(&recordCount);
    header.getU64(&headerSum);
    if (headerSum != fnv1a64(blob.data(), kHeaderBodyBytes)) {
        result.detail = "header checksum mismatch (cold start)";
        return result;
    }
    if (version != kSnapshotVersion) {
        result.detail = "snapshot version " + std::to_string(version) +
                        " != " + std::to_string(kSnapshotVersion) +
                        " (cold start)";
        return result;
    }
    if (setHash != idioms::idiomSetHash()) {
        result.detail = "idiom set changed (cold start)";
        return result;
    }

    // Records, MRU-first in the file. Collected, then restored in
    // reverse so the cache's recency order survives the restart.
    std::vector<std::pair<CacheKey, CachedMatches>> restored;
    const uint8_t *p = blob.data() + kHeaderBytes;
    const uint8_t *end = blob.data() + blob.size();
    for (uint64_t i = 0; i < recordCount; ++i) {
        if (static_cast<size_t>(end - p) < kRecordFrameBytes) {
            result.skipped += recordCount - i;
            result.detail = "truncated at record " +
                            std::to_string(i) + " of " +
                            std::to_string(recordCount);
            break;
        }
        Cursor frame{p, p + kRecordFrameBytes};
        uint32_t payloadBytes = 0;
        uint64_t checksum = 0;
        frame.getU32(&payloadBytes);
        frame.getU64(&checksum);
        p += kRecordFrameBytes;
        if (payloadBytes == 0 ||
            payloadBytes > kMaxSnapshotRecordBytes ||
            payloadBytes > static_cast<size_t>(end - p)) {
            // The length itself is implausible: resynchronization is
            // impossible, everything from here on is lost.
            result.skipped += recordCount - i;
            result.detail = "unrecoverable framing at record " +
                            std::to_string(i) + " of " +
                            std::to_string(recordCount);
            break;
        }
        const uint8_t *payload = p;
        p += payloadBytes;
        if (checksum != fnv1a64(payload, payloadBytes)) {
            ++result.skipped;
            continue; // framing is intact: skip just this record
        }
        CacheKey key;
        CachedMatches entry;
        if (!decodeRecord(Cursor{payload, payload + payloadBytes},
                          &key, &entry)) {
            ++result.skipped;
            continue;
        }
        restored.emplace_back(key, std::move(entry));
    }
    if (p != end && result.detail.empty())
        result.detail = "trailing bytes after last record";

    for (auto it = restored.rbegin(); it != restored.rend(); ++it)
        cache.restore(it->first, std::move(it->second));
    result.records = restored.size();
    result.ok = true;
    if (result.skipped > 0 && result.detail.empty())
        result.detail = std::to_string(result.skipped) +
                        " corrupt record(s) skipped";
    return result;
}

} // namespace repro::driver
