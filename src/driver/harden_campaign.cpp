/**
 * @file
 * Implementation of the fault-injection campaign (harden_campaign.h).
 *
 * Every run — golden and injected alike — gets a completely fresh
 * Memory and Interpreter, so state can never leak between runs and
 * the campaign is a pure function of (program, options). Injection
 * sites come from a splitmix64 stream keyed by (seed, program name,
 * variant, injection index): no global RNG, no time, no addresses.
 */
#include "driver/harden_campaign.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "frontend/compiler.h"
#include "interp/builtins.h"
#include "support/diagnostics.h"
#include "transform/transform.h"

namespace repro::driver {

namespace {

/** splitmix64 finalizer: the campaign's deterministic site stream. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Everything one run leaves behind for classification. */
struct RunOutput
{
    interp::RuntimeValue ret;
    /** The watched output regions, concatenated byte-for-byte. */
    std::vector<uint8_t> watched;
    uint64_t boundaries = 0;
    uint64_t steps = 0;
};

std::vector<uint8_t>
watchedSnapshot(interp::Memory &mem, const benchmarks::Instance &inst)
{
    std::vector<uint8_t> bytes;
    auto grab = [&](const std::vector<std::pair<uint64_t, size_t>> &ws,
                    uint64_t elemSize) {
        for (const auto &[addr, count] : ws) {
            interp::Memory::RawSpan span(mem, addr, elemSize * count);
            bytes.insert(bytes.end(), span.data(),
                         span.data() + span.size());
        }
    };
    // Watched regions are allocated by setup, before any fault can
    // fire, so they are in bounds on every classified run.
    grab(inst.watchDoubles, 8);
    grab(inst.watchInts, 4);
    return bytes;
}

/**
 * One armed execution over a fresh heap. FaultDetected / FatalError
 * propagate to the caller for classification.
 */
RunOutput
executeOnce(ir::Module &module,
            const benchmarks::BenchmarkProgram &program,
            const interp::FaultPlan &plan, bool reference,
            uint64_t stepLimit)
{
    interp::Memory mem;
    interp::Interpreter interp(module, mem);
    interp::registerMathBuiltins(interp);
    if (stepLimit)
        interp.setStepLimit(stepLimit);

    benchmarks::Instance inst = program.setup(mem);
    ir::Function *entry = module.functionByName(program.entry);
    if (!entry)
        throw FatalError("harden campaign: no entry function @" +
                         program.entry);
    interp.armFault(plan);

    RunOutput out;
    out.ret = reference ? interp.runReference(entry, inst.args)
                        : interp.run(entry, inst.args);
    out.boundaries = interp.faultCounter();
    out.steps = interp.stepsExecuted();
    out.watched = watchedSnapshot(mem, inst);
    return out;
}

const char *
protectAttributeFor(const transform::HardenOptions &mode)
{
    if (mode.duplicate && mode.signatures)
        return "protect";
    return mode.duplicate ? "protect:eddi" : "protect:cfcss";
}

} // namespace

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Detected: return "detected";
      case FaultOutcome::Masked: return "masked";
      case FaultOutcome::Sdc: return "sdc";
      case FaultOutcome::Crashed: return "crashed";
    }
    return "unknown";
}

HardenCampaignResult
runHardenCampaign(const benchmarks::BenchmarkProgram &program,
                  const HardenCampaignOptions &opts)
{
    HardenCampaignResult res;
    res.program = program.name;
    res.hardened = opts.harden;

    ir::Module module;
    frontend::compileMiniCOrDie(program.source, module);
    if (opts.harden) {
        ir::Function *entry = module.functionByName(program.entry);
        if (!entry)
            throw FatalError("harden campaign: no entry function @" +
                             program.entry);
        entry->addAttribute(protectAttributeFor(opts.mode));
        transform::Transformer transformer(module);
        auto reps = transformer.applyAll({});
        if (reps.size() != 1 || reps[0].kind != "harden") {
            throw FatalError(
                "harden campaign: hardening did not commit");
        }
    }

    // Golden run: a probe plan with step = UINT64_MAX never fires, so
    // the fault counter reports how many injectable boundaries the
    // entry function executed — the range steps are drawn from.
    interp::FaultPlan probe;
    probe.function = program.entry;
    probe.step = UINT64_MAX;
    RunOutput golden = executeOnce(module, program, probe,
                                   opts.useReferenceEngine, 0);
    res.goldenSteps = golden.steps;
    res.goldenBoundaries = golden.boundaries;
    if (res.goldenBoundaries == 0) {
        throw FatalError("harden campaign: entry function executed "
                         "no injectable boundaries");
    }

    // A flipped loop bound must not stall the sweep for minutes: any
    // injected run beyond 8x the golden step count is runaway and the
    // watchdog classifies it as crashed.
    const uint64_t stepLimit = golden.steps * 8 + 1024;
    const uint64_t stream = mix64(opts.seed) ^ mix64(fnv1a(program.name)) ^
                            (opts.harden ? 0xA5A5A5A5A5A5A5A5ULL
                                         : 0x5A5A5A5A5A5A5A5AULL);

    for (size_t i = 0; i < opts.injectionsPerProgram; ++i) {
        FaultRun run;
        run.plan.function = program.entry;
        run.plan.step =
            mix64(stream + 3 * i + 1) % res.goldenBoundaries;
        run.plan.valueIndex =
            static_cast<uint32_t>(mix64(stream + 3 * i + 2));
        run.plan.bit =
            static_cast<uint32_t>(mix64(stream + 3 * i + 3) % 64);

        try {
            RunOutput out =
                executeOnce(module, program, run.plan,
                            opts.useReferenceEngine, stepLimit);
            bool same =
                interp::RuntimeValue::bitsEqual(out.ret, golden.ret) &&
                out.watched == golden.watched;
            run.outcome =
                same ? FaultOutcome::Masked : FaultOutcome::Sdc;
        } catch (const interp::FaultDetected &) {
            run.outcome = FaultOutcome::Detected;
        } catch (const FatalError &) {
            run.outcome = FaultOutcome::Crashed;
        }

        switch (run.outcome) {
          case FaultOutcome::Detected: ++res.detected; break;
          case FaultOutcome::Masked: ++res.masked; break;
          case FaultOutcome::Sdc: ++res.sdc; break;
          case FaultOutcome::Crashed: ++res.crashed; break;
        }
        res.runs.push_back(std::move(run));
    }
    return res;
}

std::vector<HardenCampaignResult>
runHardenCampaignSuite(const HardenCampaignOptions &opts,
                       unsigned numThreads)
{
    const auto &suite = benchmarks::nasParboilSuite();
    std::vector<HardenCampaignResult> out(suite.size());
    if (numThreads == 0)
        numThreads = std::thread::hardware_concurrency();
    if (numThreads == 0)
        numThreads = 1;
    if (static_cast<size_t>(numThreads) > suite.size())
        numThreads = static_cast<unsigned>(suite.size());

    // Programs are independent shards writing preassigned slots, so
    // scheduling cannot reorder or interleave results: serial and
    // parallel sweeps are byte-identical (pinned by test_harden).
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::exception_ptr firstError;
    auto worker = [&]() {
        try {
            for (size_t i = next.fetch_add(1);
                 i < suite.size() && !failed.load();
                 i = next.fetch_add(1)) {
                out[i] = runHardenCampaign(suite[i], opts);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError)
                firstError = std::current_exception();
            failed.store(true);
        }
    };
    if (numThreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(numThreads);
        for (unsigned w = 0; w < numThreads; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);
    return out;
}

} // namespace repro::driver
