/**
 * @file
 * Cross-request match cache: the store behind matching-as-a-service.
 *
 * One solve of one function against the idiom library is pure in
 * exactly two inputs: the structure of the function body and the
 * idiom set. The cache therefore keys entries by the pair
 * (ir::Function::contentHash(), idioms::idiomSetHash()) — not by
 * function name, module or address — so a resubmitted module pays
 * solver time only for functions whose structure actually changed,
 * and two clients submitting the same kernel share one entry.
 *
 * Solutions bind ir::Value pointers into one module's IR, which makes
 * them worthless across requests (the submitting module is recompiled
 * every time). Entries therefore store matches in a *portable*
 * encoding: every bound value becomes a PortableValue naming its
 * structural position (argument index, layout-order instruction
 * index) or its module-independent identity (constant type + bit
 * pattern, global/function name). Replaying an entry re-anchors those
 * positions onto the fresh function's IR — which is guaranteed to be
 * structurally identical because its content hash matched — and
 * materializes ordinary IdiomMatch objects. Re-anchoring is validated
 * by membership (every index in range, every name resolvable), the
 * same no-deref discipline the transactional RewriteEngine applies to
 * its plans; any failure falls back to a fresh solve. Because that
 * validation is membership-only, entries also carry a
 * StructuralSignature (arg/block/instruction counts) checked before
 * replay, so a 64-bit contentHash collision between two different
 * bodies degrades to a fresh solve instead of wrong matches.
 *
 * Entries also carry the function's SolveStats (so replayed reports
 * are byte-identical to cold ones) and may hold the live
 * FunctionAnalyses built during the solve. Analyses reference IR by
 * address and cannot be transplanted; they are only handed back for
 * the exact owner function within the driver epoch that deposited
 * them (see MatchingDriver::analysesFor).
 *
 * Size-bounded: least-recently-used entries are evicted beyond
 * capacity(). All operations are mutex-guarded, so parallel matching
 * shards and concurrent service connections share one cache safely.
 */
#ifndef DRIVER_MATCH_CACHE_H
#define DRIVER_MATCH_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/function_analyses.h"
#include "idioms/library.h"
#include "solver/solver.h"

namespace repro::driver {

/** Cache key: structural function identity × idiom-set identity. */
struct CacheKey
{
    uint64_t contentHash = 0;
    uint64_t idiomSetHash = 0;

    bool
    operator<(const CacheKey &o) const
    {
        return contentHash != o.contentHash
                   ? contentHash < o.contentHash
                   : idiomSetHash < o.idiomSetHash;
    }
};

/** Module-independent encoding of one bound IR value. */
struct PortableValue
{
    enum class Kind : uint8_t
    {
        Arg,      ///< argument, by index
        Inst,     ///< instruction, by layout-order index
        IntConst, ///< interned integer constant: type text + value
        FPConst,  ///< interned fp constant: type text + bit pattern
        Global,   ///< global variable, by name
        Func,     ///< function reference, by name
    };

    Kind kind = Kind::Inst;
    uint32_t index = 0;  ///< Arg / Inst position
    int64_t bits = 0;    ///< constant payload (fp via bit pattern)
    std::string text;    ///< constant type text, or global/func name
};

/** One match with its solution bindings in portable form. */
struct PortableMatch
{
    std::string idiom;
    idioms::IdiomClass cls = idioms::IdiomClass::Other;
    /** (variable name, bound value), in Solution::bindings order. */
    std::vector<std::pair<std::string, PortableValue>> bindings;
};

/**
 * Cheap structural second factor next to the 64-bit contentHash.
 * FNV-1a has weak diffusion, so a long-lived shared cache cannot rest
 * on hash equality alone: replay validation is membership-only, and a
 * colliding entry would silently re-anchor wrong matches. A count
 * mismatch downgrades the collision to a plain miss (fresh solve).
 */
struct StructuralSignature
{
    uint32_t numArgs = 0;
    uint32_t numBlocks = 0;
    uint32_t numInsts = 0;

    bool
    operator==(const StructuralSignature &o) const
    {
        return numArgs == o.numArgs && numBlocks == o.numBlocks &&
               numInsts == o.numInsts;
    }

    bool
    operator!=(const StructuralSignature &o) const
    {
        return !(*this == o);
    }
};

/** One cached per-function solve result. */
struct CachedMatches
{
    std::vector<PortableMatch> matches;
    /** Shape of the solved function; checked before any replay. */
    StructuralSignature signature;
    /** Solver effort of the original solve, replayed into reports. */
    solver::SolveStats stats;

    /**
     * Live analyses deposited by the solve that created the entry.
     * Only valid for the exact owner function within the owner epoch;
     * never dereference `analysesOwner` — compare it.
     */
    std::shared_ptr<analysis::FunctionAnalyses> analyses;
    const ir::Function *analysesOwner = nullptr;
    uint64_t analysesEpoch = 0;
};

/** Monotonic effectiveness counters (reported by STATS / benches). */
struct CacheCounters
{
    uint64_t hits = 0;       ///< replays served from the cache
    uint64_t misses = 0;     ///< solves that had to run
    uint64_t evictions = 0;  ///< entries dropped by the LRU bound
    uint64_t insertions = 0; ///< entries stored
};

/** The size-bounded LRU store. */
class MatchCache
{
  public:
    explicit MatchCache(size_t capacity = kDefaultCapacity);

    static constexpr size_t kDefaultCapacity = 1024;

    /**
     * Entry for @p key, or nullptr. Touches recency but not the
     * hit/miss counters: the caller decides whether the entry was
     * actually usable (re-anchoring can fail) and reports via
     * countHit()/countMiss().
     */
    std::shared_ptr<const CachedMatches> lookup(const CacheKey &key);

    /** Store (or refresh) the entry for @p key. */
    void insert(const CacheKey &key, CachedMatches value);

    /**
     * Deposit live analyses into an existing entry so later requests
     * for the same live function can skip rebuilding them. No-op when
     * the key is absent (e.g. already evicted).
     */
    void depositAnalyses(
        const CacheKey &key,
        std::shared_ptr<analysis::FunctionAnalyses> analyses,
        const ir::Function *owner, uint64_t epoch);

    /**
     * The deposited analyses of @p key, iff they were built for
     * exactly @p owner during @p epoch; nullptr otherwise.
     */
    std::shared_ptr<analysis::FunctionAnalyses>
    analysesFor(const CacheKey &key, const ir::Function *owner,
                uint64_t epoch);

    void countHit();
    void countMiss();

    /** Shrinking below size() evicts LRU entries immediately. */
    void setCapacity(size_t capacity);
    size_t capacity() const;
    size_t size() const;

    CacheCounters counters() const;
    void resetCounters();

    /** Drop every entry (counters survive; eviction count grows). */
    void clear();

    /**
     * Every entry in MRU-first order, without touching recency or
     * counters. The snapshot writer (driver/cache_snapshot.h) walks
     * this; entries are shared_ptrs, so a concurrent insert/evict
     * never invalidates the returned view.
     */
    std::vector<std::pair<CacheKey, std::shared_ptr<const CachedMatches>>>
    entriesMruFirst() const;

    /**
     * Insert without counting an insertion: the snapshot loader's
     * path, so a restart's recovered entries do not masquerade as
     * request-driven cache activity in STATS. Same LRU/eviction
     * behavior as insert().
     */
    void restore(const CacheKey &key, CachedMatches value);

    // Portable encoding ---------------------------------------------------

    /** The structural signature of @p func (arg/block/inst counts). */
    static StructuralSignature signatureOf(const ir::Function *func);

    /**
     * Encode @p matches of @p func portably. Returns false (leaving
     * @p out unspecified) when any binding cannot be encoded — a
     * value owned by another function has no stable position — in
     * which case the function must not be cached.
     */
    static bool capture(const std::vector<idioms::IdiomMatch> &matches,
                        const ir::Function *func,
                        std::vector<PortableMatch> *out);

    /**
     * Re-anchor @p matches onto @p func, materializing solutions that
     * bind @p func's own IR. Validation is by membership: every
     * position must be in range and every name resolvable in @p
     * func's module. Returns false (leaving @p out unspecified) on
     * any failure; the caller falls back to a fresh solve.
     */
    static bool reanchor(const std::vector<PortableMatch> &matches,
                         ir::Function *func,
                         std::vector<idioms::IdiomMatch> *out);

  private:
    /** MRU-first entry list; the map indexes into it. */
    using LruList =
        std::list<std::pair<CacheKey, std::shared_ptr<CachedMatches>>>;

    void insertLocked(const CacheKey &key, CachedMatches value);
    void evictOverCapacityLocked();

    mutable std::mutex mutex_;
    size_t capacity_;
    LruList lru_;
    std::map<CacheKey, LruList::iterator> index_;
    CacheCounters counters_;
};

} // namespace repro::driver

#endif // DRIVER_MATCH_CACHE_H
