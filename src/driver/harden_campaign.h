/**
 * @file
 * Deterministic fault-injection campaign for the hardening passes.
 *
 * The hardening transformations (transform/harden.h) claim to detect
 * single-bit data and control-flow faults. This harness puts a number
 * on that claim, EDDI/ASPIS-paper style: for each benchmark program
 * of the NAS/Parboil suite it compiles the program, optionally
 * hardens its entry function, executes one golden (fault-free) run,
 * then sweeps deterministic single-bit faults (interp::FaultPlan)
 * across the dynamic execution and classifies every injected run:
 *
 *  - **detected** — the hardening checks trapped (FaultDetected);
 *  - **masked** — the run finished and its watched outputs and return
 *    value are byte-identical to the golden run (the flipped bit was
 *    dead, logically masked, or overwritten);
 *  - **sdc** — silent data corruption: the run finished with
 *    different outputs and no one noticed — the outcome hardening
 *    exists to eliminate;
 *  - **crashed** — the runtime system aborted the run (FatalError:
 *    out-of-bounds access, division by zero, step-limit watchdog).
 *    Detection by crash is a property of the interpreter's bounds
 *    checking, not of the hardening passes, so it is reported
 *    separately and excluded from the detection rate.
 *
 * detectionRate() = detected / (detected + sdc): of the faults that
 * would otherwise corrupt results silently, the fraction the checks
 * caught. The campaign is bit-for-bit deterministic: injection sites
 * derive from a seeded splitmix64 stream over (seed, program,
 * variant, index), the golden boundary count comes from a
 * never-firing probe plan, and both execution engines classify every
 * plan identically (tests/test_harden.cpp pins this).
 */
#ifndef DRIVER_HARDEN_CAMPAIGN_H
#define DRIVER_HARDEN_CAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

#include "benchmarks/suite.h"
#include "interp/interpreter.h"
#include "transform/harden.h"

namespace repro::driver {

/** Classification of one injected run. */
enum class FaultOutcome
{
    Detected,
    Masked,
    Sdc,
    Crashed,
};

const char *faultOutcomeName(FaultOutcome outcome);

/** One injected run: the plan and what happened. */
struct FaultRun
{
    interp::FaultPlan plan;
    FaultOutcome outcome = FaultOutcome::Masked;
};

/** Campaign configuration. */
struct HardenCampaignOptions
{
    /** Single-bit faults injected per program. */
    size_t injectionsPerProgram = 40;
    /** Harden the entry function before injecting (false = baseline
     *  sweep measuring how much SDC unprotected code suffers). */
    bool harden = true;
    /** Pass selection when hardening. */
    transform::HardenOptions mode;
    /** Stream seed for injection-site selection. */
    uint64_t seed = 0x48415244; // "HARD"
    /** Classify with the tree-walking reference engine instead of the
     *  bytecode engine. Outcomes must be identical either way. */
    bool useReferenceEngine = false;
};

/** Aggregated campaign result of one program variant. */
struct HardenCampaignResult
{
    std::string program;
    bool hardened = false;
    /** Dynamic instructions of the golden run. */
    uint64_t goldenSteps = 0;
    /** Injectable boundaries the entry function executed (the range
     *  FaultPlan::step is drawn from). */
    uint64_t goldenBoundaries = 0;
    size_t detected = 0;
    size_t masked = 0;
    size_t sdc = 0;
    size_t crashed = 0;
    /** Every injected run, in injection order. */
    std::vector<FaultRun> runs;

    /**
     * Of the faults that either trapped or silently corrupted output,
     * the fraction the hardening checks caught. 1.0 when no fault did
     * either (nothing to detect).
     */
    double
    detectionRate() const
    {
        size_t denom = detected + sdc;
        return denom == 0 ? 1.0
                          : static_cast<double>(detected) /
                                static_cast<double>(denom);
    }
};

/**
 * Run the campaign over one benchmark program. Throws FatalError when
 * the program fails to compile, the golden run fails, or (hardened
 * variant) the hardening rewrite does not commit.
 */
HardenCampaignResult
runHardenCampaign(const benchmarks::BenchmarkProgram &program,
                  const HardenCampaignOptions &opts);

/**
 * The campaign over the whole NAS/Parboil suite, in suite order.
 * Programs are independent shards: results are written to
 * preassigned slots, so any @p numThreads (1 = inline) produces
 * byte-identical results.
 */
std::vector<HardenCampaignResult>
runHardenCampaignSuite(const HardenCampaignOptions &opts,
                       unsigned numThreads = 1);

} // namespace repro::driver

#endif // DRIVER_HARDEN_CAMPAIGN_H
